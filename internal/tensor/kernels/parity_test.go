package kernels

import (
	"math"
	"math/rand"
	"testing"
)

// Cross-backend parity: every SIMD backend is pinned against the scalar
// oracle over fuzzed vectors. Order-preserving kernels (Add, Sub, Axpy,
// Scale, Fill, SGDMomentum, AdamStep) must match bit-for-bit — NaN,
// ±Inf, signed zero and denormals included. Reassociating reductions
// (Dot, SumSquares) must stay within a per-element ulp budget.
//
// Under `-tags noasm` only the scalar backend exists and the parity
// loop degenerates to scalar-vs-scalar — which still exercises the full
// kernel surface, so the noasm CI leg runs these tests meaningfully.

// fuzzVector fills a length-n vector with adversarial IEEE-754 values:
// the quiet NaN (single canonical payload, so results cannot depend on
// which operand's payload an instruction prefers), ±Inf, ±0, denormals,
// extreme magnitudes, and a pseudorandom wide-dynamic-range tail.
func fuzzVector(rng *rand.Rand, n int) []float32 {
	specials := []float32{
		float32(math.NaN()),
		float32(math.Inf(1)),
		float32(math.Inf(-1)),
		float32(math.Copysign(0, -1)),
		0,
		math.SmallestNonzeroFloat32,
		-math.SmallestNonzeroFloat32,
		5.877e-39, // subnormal
		-1.2e-41,  // subnormal
		math.MaxFloat32,
		-math.MaxFloat32,
		1.1754944e-38, // smallest normal
	}
	v := make([]float32, n)
	for i := range v {
		switch rng.Intn(4) {
		case 0:
			v[i] = specials[rng.Intn(len(specials))]
		default:
			v[i] = (rng.Float32() - 0.5) * float32(math.Exp(float64(rng.Intn(60)-30)))
		}
	}
	return v
}

func bitsDiffer(got, want []float32) (int, bool) {
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			// NaN payloads and sign bits are not specified: x86 min/mul
			// and FMA sequences legally produce a differently-signed
			// quiet NaN than the scalar compiler output (e.g. Inf*0).
			// Any-NaN vs any-NaN is parity; everything else is bitwise.
			if math.IsNaN(float64(got[i])) && math.IsNaN(float64(want[i])) {
				continue
			}
			return i, true
		}
	}
	return 0, false
}

func requireBitIdentical(t *testing.T, kernel, backend string, n int, got, want []float32) {
	t.Helper()
	if i, diff := bitsDiffer(got, want); diff {
		t.Fatalf("%s backend=%s len=%d: element %d = %x (%v), scalar oracle %x (%v)",
			kernel, backend, n, i, math.Float32bits(got[i]), got[i],
			math.Float32bits(want[i]), want[i])
	}
}

// simdBackends returns every non-scalar backend (empty under noasm or
// on hosts without SIMD support — the parity tests then self-check the
// scalar path against itself).
func simdBackends() []string {
	var out []string
	for _, b := range Backends() {
		if b != "scalar" {
			out = append(out, b)
		}
	}
	if len(out) == 0 {
		out = append(out, "scalar")
	}
	return out
}

// fuzzLens yields the randomized length schedule: the boundary sizes
// around the 8-lane blocking plus random lengths in [0, 4097].
func fuzzLens(rng *rand.Rand) []int {
	lens := []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 366, 1024, 4096, 4097}
	for i := 0; i < 40; i++ {
		lens = append(lens, rng.Intn(4098))
	}
	return lens
}

func TestParityElementwise(t *testing.T) {
	orig := Backend()
	defer SetBackend(orig)
	rng := rand.New(rand.NewSource(101))

	for _, backend := range simdBackends() {
		for _, n := range fuzzLens(rng) {
			dst := fuzzVector(rng, n)
			src := fuzzVector(rng, n)
			scalars := []float32{0, 1, -1, 0.37, -2.5e20, 1.5e-42,
				float32(math.NaN()), float32(math.Inf(1))}
			a := scalars[rng.Intn(len(scalars))]

			for kernel, run := range map[string]func(d, s []float32){
				"Add":   func(d, s []float32) { Add(d, s) },
				"Sub":   func(d, s []float32) { Sub(d, s) },
				"Axpy":  func(d, s []float32) { Axpy(a, d, s) },
				"Scale": func(d, s []float32) { Scale(a, d) },
				"Fill":  func(d, s []float32) { Fill(a, d) },
			} {
				want := append([]float32(nil), dst...)
				got := append([]float32(nil), dst...)

				if err := SetBackend("scalar"); err != nil {
					t.Fatal(err)
				}
				run(want, src)
				if err := SetBackend(backend); err != nil {
					t.Fatal(err)
				}
				run(got, src)
				requireBitIdentical(t, kernel, backend, n, got, want)
			}
		}
	}
}

// TestParityAliased pins the self-aliasing case (Add(v, v): each
// element doubles) across backends.
func TestParityAliased(t *testing.T) {
	orig := Backend()
	defer SetBackend(orig)
	rng := rand.New(rand.NewSource(103))

	for _, backend := range simdBackends() {
		for _, n := range []int{0, 1, 7, 8, 9, 64, 1023, 4097} {
			v := fuzzVector(rng, n)
			want := append([]float32(nil), v...)
			got := append([]float32(nil), v...)

			if err := SetBackend("scalar"); err != nil {
				t.Fatal(err)
			}
			Add(want, want)
			if err := SetBackend(backend); err != nil {
				t.Fatal(err)
			}
			Add(got, got)
			requireBitIdentical(t, "Add(aliased)", backend, n, got, want)
		}
	}
}

func TestParityOptimizers(t *testing.T) {
	orig := Backend()
	defer SetBackend(orig)
	rng := rand.New(rand.NewSource(107))

	for _, backend := range simdBackends() {
		for _, n := range fuzzLens(rng) {
			p0 := fuzzVector(rng, n)
			g := fuzzVector(rng, n)
			vel0 := fuzzVector(rng, n)
			m0 := fuzzVector(rng, n)

			// SGD with momentum, three chained steps (state feeds back).
			pS, vS := append([]float32(nil), p0...), append([]float32(nil), vel0...)
			pG, vG := append([]float32(nil), p0...), append([]float32(nil), vel0...)
			for step := 0; step < 3; step++ {
				if err := SetBackend("scalar"); err != nil {
					t.Fatal(err)
				}
				SGDMomentum(pS, vS, g, 0.05, 0.9)
				if err := SetBackend(backend); err != nil {
					t.Fatal(err)
				}
				SGDMomentum(pG, vG, g, 0.05, 0.9)
			}
			requireBitIdentical(t, "SGDMomentum.p", backend, n, pG, pS)
			requireBitIdentical(t, "SGDMomentum.vel", backend, n, vG, vS)

			// Adam, three chained steps with evolving bias correction.
			pS = append([]float32(nil), p0...)
			pG = append([]float32(nil), p0...)
			mS := append([]float32(nil), m0...)
			mG := append([]float32(nil), m0...)
			vvS := append([]float32(nil), vel0...)
			vvG := append([]float32(nil), vel0...)
			const b1, b2, lr, eps = 0.9, 0.999, 1e-3, 1e-8
			for step := 1; step <= 3; step++ {
				b1c := 1 - float32(math.Pow(b1, float64(step)))
				b2c := 1 - float32(math.Pow(b2, float64(step)))
				if err := SetBackend("scalar"); err != nil {
					t.Fatal(err)
				}
				AdamStep(pS, mS, vvS, g, b1, b2, 1-b1, 1-b2, b1c, b2c, lr, eps)
				if err := SetBackend(backend); err != nil {
					t.Fatal(err)
				}
				AdamStep(pG, mG, vvG, g, b1, b2, 1-b1, 1-b2, b1c, b2c, lr, eps)
			}
			requireBitIdentical(t, "Adam.p", backend, n, pG, pS)
			requireBitIdentical(t, "Adam.m", backend, n, mG, mS)
			requireBitIdentical(t, "Adam.v", backend, n, vvG, vvS)
		}
	}
}

// TestParityReductions bounds the reassociating kernels: the SIMD
// result may differ from scalar by at most ~1 ulp per element of
// accumulated magnitude.
func TestParityReductions(t *testing.T) {
	orig := Backend()
	defer SetBackend(orig)
	rng := rand.New(rand.NewSource(109))

	for _, backend := range simdBackends() {
		for _, n := range fuzzLens(rng) {
			// Finite payloads only: a NaN/Inf anywhere legitimately
			// poisons the whole reduction on every backend (checked
			// separately below).
			a := make([]float32, n)
			b := make([]float32, n)
			var magDot, magSq float64
			for i := range a {
				a[i] = (rng.Float32() - 0.5) * float32(math.Exp(float64(rng.Intn(30)-15)))
				b[i] = (rng.Float32() - 0.5) * float32(math.Exp(float64(rng.Intn(30)-15)))
				magDot += math.Abs(float64(a[i]) * float64(b[i]))
				magSq += float64(a[i]) * float64(a[i])
			}
			ulp := 1.0 / (1 << 23)
			tol := (float64(n) + 8) * ulp

			if err := SetBackend("scalar"); err != nil {
				t.Fatal(err)
			}
			dotS := float64(Dot(a, b))
			sqS := SumSquares(a)
			if err := SetBackend(backend); err != nil {
				t.Fatal(err)
			}
			dotG := float64(Dot(a, b))
			sqG := SumSquares(a)

			if math.Abs(dotG-dotS) > tol*(magDot+1e-30) {
				t.Fatalf("Dot backend=%s n=%d: %v vs scalar %v exceeds %g·Σ|aᵢbᵢ|",
					backend, n, dotG, dotS, tol)
			}
			// float64 accumulation of exact squares: far tighter bound.
			if math.Abs(sqG-sqS) > 1e-12*(magSq+1e-300) {
				t.Fatalf("SumSquares backend=%s n=%d: %v vs scalar %v",
					backend, n, sqG, sqS)
			}
		}

		// NaN/Inf poisoning must propagate on every backend.
		if err := SetBackend(backend); err != nil {
			t.Fatal(err)
		}
		v := make([]float32, 64)
		for i := range v {
			v[i] = 1
		}
		v[33] = float32(math.NaN())
		if d := Dot(v, v); !math.IsNaN(float64(d)) {
			t.Fatalf("backend=%s: Dot ignored NaN: %v", backend, d)
		}
		if s := SumSquares(v); !math.IsNaN(s) {
			t.Fatalf("backend=%s: SumSquares ignored NaN: %v", backend, s)
		}
		v[33] = float32(math.Inf(1))
		if d := Dot(v, v); !math.IsInf(float64(d), 1) {
			t.Fatalf("backend=%s: Dot ignored +Inf: %v", backend, d)
		}
	}
}

// FuzzAddAxpyParity is the go-native fuzz entry for the two kernels the
// aggregation datapath leans on hardest.
func FuzzAddAxpyParity(f *testing.F) {
	f.Add(int64(1), 17, float32(0.5))
	f.Add(int64(2), 4096, float32(-1))
	f.Add(int64(3), 0, float32(math.Inf(1)))
	f.Fuzz(func(t *testing.T, seed int64, n int, a float32) {
		if n < 0 || n > 4097 {
			t.Skip()
		}
		orig := Backend()
		defer SetBackend(orig)
		rng := rand.New(rand.NewSource(seed))
		dst := fuzzVector(rng, n)
		src := fuzzVector(rng, n)
		for _, backend := range simdBackends() {
			for _, kernel := range []string{"Add", "Axpy"} {
				want := append([]float32(nil), dst...)
				got := append([]float32(nil), dst...)
				if err := SetBackend("scalar"); err != nil {
					t.Fatal(err)
				}
				if kernel == "Add" {
					Add(want, src)
				} else {
					Axpy(a, want, src)
				}
				if err := SetBackend(backend); err != nil {
					t.Fatal(err)
				}
				if kernel == "Add" {
					Add(got, src)
				} else {
					Axpy(a, got, src)
				}
				requireBitIdentical(t, kernel, backend, n, got, want)
			}
		}
	})
}
