//go:build amd64 && !noasm

#include "textflag.h"

// AVX2 quantization kernels. Every function takes a count n that is a
// positive multiple of 8 (the Go wrappers in quant_amd64.go peel the
// tail). Same operand-order convention as simd_amd64.s: Go assembler
// VEX operands are reversed from Intel syntax.
//
// Constants are materialized in registers (VPCMPEQD all-ones then a
// shift) instead of loaded from memory, keeping the functions
// rodata-free.

// func maxAbsBlocks8(v *float32, n int, part *[8]uint32)
//
// part[j] = max over the j-th lane of bits(v[i]) &^ signbit, compared
// unsigned — exact magnitude order for every IEEE value, with NaN
// payloads above +Inf. Max is order-free, so the lane split cannot
// change the reduced result.
TEXT ·maxAbsBlocks8(SB), NOSPLIT, $0-24
	MOVQ v+0(FP), SI
	MOVQ n+8(FP), CX
	MOVQ part+16(FP), DI
	VPCMPEQD Y6, Y6, Y6
	VPSRLD   $1, Y6, Y6  // 0x7FFFFFFF abs mask
	VPXOR    Y0, Y0, Y0  // running lane max

maxabs8:
	VMOVDQU (SI), Y1
	VPAND   Y6, Y1, Y1
	VPMAXUD Y1, Y0, Y0
	ADDQ $32, SI
	SUBQ $8, CX
	JNZ  maxabs8

	VMOVDQU Y0, (DI)
	VZEROUPPER
	RET

// func quantBlocks8(dst *int32, src *float32, n int, scale float32)
//
// dst = cvtps2dq(clamp(src*scale, ±32767.0)). The float clamp runs
// before the convert: MINPS returns its second source when the first
// is NaN (collapsing NaN to +32767.0) and saturates oversized products
// with the correct sign, so CVTPS2DQ only ever sees [-32767, 32767]
// and its round-to-nearest-even is exact — the scalar quantElem
// sequence, expression for expression.
TEXT ·quantBlocks8(SB), NOSPLIT, $0-28
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	VBROADCASTSS scale+24(FP), Y7
	MOVL $0x46FFFE00, AX  // float32(32767)
	MOVQ AX, X6
	VPBROADCASTD X6, Y6
	MOVL $0xC6FFFE00, AX  // float32(-32767)
	MOVQ AX, X5
	VPBROADCASTD X5, Y5

quant8:
	VMULPS     (SI), Y7, Y0
	VMINPS     Y6, Y0, Y0 // min(p, +32767): src1=p, so NaN → +32767
	VMAXPS     Y5, Y0, Y0 // max(p, -32767)
	VCVTPS2DQ  Y0, Y0
	VMOVDQU    Y0, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $8, CX
	JNZ  quant8

	VZEROUPPER
	RET

// func dequantBlocks8(dst *float32, src *int32, n int, scale float32)
//
// dst = cvtdq2ps(src) * scale. CVTDQ2PS rounds to nearest even, like
// Go's int32→float32 conversion; one multiply, one rounding — the
// scalar dequantElem expression.
TEXT ·dequantBlocks8(SB), NOSPLIT, $0-28
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	VBROADCASTSS scale+24(FP), Y7

dequant8:
	VMOVDQU   (SI), Y0
	VCVTDQ2PS Y0, Y0
	VMULPS    Y7, Y0, Y0
	VMOVUPS   Y0, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $8, CX
	JNZ  dequant8

	VZEROUPPER
	RET

// func addSatBlocks8(dst, src *int32, n int)
//
// dst = sat32(dst + src). AVX2 has no 32-bit saturating add, so:
// r = a+b wrapping; overflow mask (a^r)&(b^r) has the sign bit set iff
// the signed add wrapped; saturation value (a>>31)^0x7FFFFFFF is
// MaxInt32 for a ≥ 0, MinInt32 for a < 0; VBLENDVPS selects by the
// mask's per-lane sign bit. Mirrors addSatI32Elem exactly.
TEXT ·addSatBlocks8(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	VPCMPEQD Y6, Y6, Y6
	VPSRLD   $1, Y6, Y6  // 0x7FFFFFFF

addsat8:
	VMOVDQU (DI), Y0     // a
	VMOVDQU (SI), Y1     // b
	VPADDD  Y1, Y0, Y2   // r = a + b
	VPXOR   Y2, Y0, Y3   // a ^ r
	VPXOR   Y2, Y1, Y4   // b ^ r
	VPAND   Y4, Y3, Y3   // overflow mask
	VPSRAD  $31, Y0, Y5
	VPXOR   Y6, Y5, Y5   // (a>>31) ^ 0x7FFFFFFF
	VBLENDVPS Y3, Y5, Y2, Y2
	VMOVDQU Y2, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $8, CX
	JNZ  addsat8

	VZEROUPPER
	RET
