// Vectorized float32 kernels for the gradient hot path.
//
// These are the element-wise primitives the whole gradient datapath
// funnels through: the accelerator's adder array (accel.Ingest), the
// optimizers, backward-pass accumulation, and AllReduce's
// reduce-scatter. Each kernel processes four lanes per loop iteration
// with the slice-reslicing idiom that lets the compiler drop bounds
// checks — the software analog of the paper's eight parallel float32
// adders consuming a 256-bit burst per cycle.
//
// Unrolling must never change results: every kernel performs exactly
// the same per-element operations in exactly the same order as its
// scalar reference, so simulation outputs stay bit-identical (NaN, Inf
// and signed-zero propagation included). kernels_test.go enforces this
// bit-for-bit, and the steady-state path allocates nothing.
package tensor

// Add accumulates src into dst element-wise: dst[i] += src[i].
// Lengths must match.
func Add(dst, src []float32) {
	assertLen(len(dst), len(src))
	for len(dst) >= 4 && len(src) >= 4 {
		dst[0] += src[0]
		dst[1] += src[1]
		dst[2] += src[2]
		dst[3] += src[3]
		dst = dst[4:]
		src = src[4:]
	}
	for i := range dst {
		dst[i] += src[i]
	}
}

// Axpy computes dst[i] += a * src[i]. Lengths must match.
func Axpy(a float32, dst, src []float32) {
	assertLen(len(dst), len(src))
	for len(dst) >= 4 && len(src) >= 4 {
		dst[0] += a * src[0]
		dst[1] += a * src[1]
		dst[2] += a * src[2]
		dst[3] += a * src[3]
		dst = dst[4:]
		src = src[4:]
	}
	for i := range dst {
		dst[i] += a * src[i]
	}
}

// Scale multiplies every element of dst by a.
func Scale(a float32, dst []float32) {
	for len(dst) >= 4 {
		dst[0] *= a
		dst[1] *= a
		dst[2] *= a
		dst[3] *= a
		dst = dst[4:]
	}
	for i := range dst {
		dst[i] *= a
	}
}

// Zero clears dst. The clear builtin compiles to the runtime's bulk
// memclr, which outruns any explicit unrolling.
func Zero(dst []float32) {
	clear(dst)
}
