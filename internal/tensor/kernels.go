// Vectorized float32 kernels for the gradient hot path.
//
// These are the element-wise primitives the whole gradient datapath
// funnels through: the accelerator's adder array (accel.Ingest), the
// optimizers, backward-pass accumulation, and AllReduce's
// reduce-scatter. They delegate to the runtime-dispatched backend in
// internal/tensor/kernels — hand-written AVX2 (amd64) or NEON (arm64)
// assembly when the host supports it, 4×-unrolled pure-Go loops
// otherwise — the software analog of the paper's eight parallel float32
// adders consuming a 256-bit burst per cycle.
//
// Vectorization must never change results: every backend performs
// exactly the same per-element operations in exactly the same order as
// the scalar reference, so simulation outputs stay bit-identical (NaN,
// Inf and signed-zero propagation included). kernels_test.go and the
// kernels package's parity fuzz enforce this bit-for-bit, and the
// steady-state path allocates nothing. Set TENSOR_BACKEND=scalar|simd
// to override the automatic choice; kernels.Backend() reports it.
package tensor

import "iswitch/internal/tensor/kernels"

// Add accumulates src into dst element-wise: dst[i] += src[i].
// Lengths must match.
func Add(dst, src []float32) { kernels.Add(dst, src) }

// Sub subtracts src from dst element-wise: dst[i] -= src[i].
// Lengths must match.
func Sub(dst, src []float32) { kernels.Sub(dst, src) }

// Axpy computes dst[i] += a * src[i]. Lengths must match.
func Axpy(a float32, dst, src []float32) { kernels.Axpy(a, dst, src) }

// Scale multiplies every element of dst by a.
func Scale(a float32, dst []float32) { kernels.Scale(a, dst) }

// Fill sets every element of dst to a.
func Fill(a float32, dst []float32) { kernels.Fill(a, dst) }

// Zero clears dst. The clear builtin compiles to the runtime's bulk
// memclr, which outruns any explicit unrolling.
func Zero(dst []float32) { kernels.Zero(dst) }

// Dot returns the inner product of a and b. SIMD backends reassociate
// the accumulation (≤1 ulp/element from the scalar order).
func Dot(a, b []float32) float32 { return kernels.Dot(a, b) }

// Backend reports the active kernel backend ("scalar", "avx2", ...);
// see the kernels package for selection rules.
func Backend() string { return kernels.Backend() }
