// Package tensor provides the float32 vector and matrix math the
// neural-network and RL packages build on. Gradients travel the network
// as raw float32, matching the paper's in-switch adders, so the whole
// stack stays in float32.
package tensor

import (
	"fmt"
	"math"
	"math/rand"

	"iswitch/internal/tensor/kernels"
)

// Vec is a dense float32 vector.
type Vec []float32

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Clone returns a copy of v.
func (v Vec) Clone() Vec { return append(Vec(nil), v...) }

// Zero sets every element to 0.
func (v Vec) Zero() { Zero(v) }

// Fill sets every element to x.
func (v Vec) Fill(x float32) { Fill(x, v) }

// Add accumulates w into v element-wise. Lengths must match.
func (v Vec) Add(w Vec) { Add(v, w) }

// Sub subtracts w from v element-wise.
func (v Vec) Sub(w Vec) { Sub(v, w) }

// Scale multiplies every element by a.
func (v Vec) Scale(a float32) { Scale(a, v) }

// Axpy computes v += a*w.
func (v Vec) Axpy(a float32, w Vec) { Axpy(a, v, w) }

// Dot returns the inner product of v and w.
func (v Vec) Dot(w Vec) float32 { return Dot(v, w) }

// Norm2 returns the Euclidean norm, accumulated in float64 (each
// squared term is exact in binary64, so backends differ only in
// summation order).
func (v Vec) Norm2() float32 {
	return float32(math.Sqrt(kernels.SumSquares(v)))
}

// ClipNorm rescales v in place so its Euclidean norm is at most c,
// returning the scale applied (1 when no clipping occurred). Gradient
// clipping keeps RL training numerically stable.
func (v Vec) ClipNorm(c float32) float32 {
	if c <= 0 {
		panic("tensor: clip bound must be positive")
	}
	n := v.Norm2()
	if n <= c || n == 0 {
		return 1
	}
	s := c / n
	v.Scale(s)
	return s
}

// ArgMax returns the index of the largest element (first on ties).
// The scan runs four comparisons per iteration; "first on ties" (and
// NaN handling: comparisons with NaN are false, so NaN elements never
// win) is preserved because candidates are still visited in index
// order.
func (v Vec) ArgMax() int {
	if len(v) == 0 {
		panic("tensor: ArgMax of empty vector")
	}
	best := 0
	i := 1
	for ; i+4 <= len(v); i += 4 {
		if v[i] > v[best] {
			best = i
		}
		if v[i+1] > v[best] {
			best = i + 1
		}
		if v[i+2] > v[best] {
			best = i + 2
		}
		if v[i+3] > v[best] {
			best = i + 3
		}
	}
	for ; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// Max returns the largest element.
func (v Vec) Max() float32 { return v[v.ArgMax()] }

// Softmax writes the softmax of v into dst (which may alias v) using
// the max-subtraction trick for stability. The max and normalize passes
// run 4 lanes per iteration (same operations, same order, so results
// are unchanged); the exp pass stays scalar — math.Exp has no vector
// form and dominates this loop regardless of width.
func Softmax(dst, v Vec) {
	assertLen(len(dst), len(v))
	m := v.Max()
	var sum float32
	for i, x := range v {
		e := float32(math.Exp(float64(x - m)))
		dst[i] = e
		sum += e
	}
	d := dst
	for len(d) >= 4 {
		d[0] /= sum
		d[1] /= sum
		d[2] /= sum
		d[3] /= sum
		d = d[4:]
	}
	for i := range d {
		d[i] /= sum
	}
}

// Mat is a dense row-major float32 matrix.
type Mat struct {
	Rows, Cols int
	Data       []float32
}

// NewMat returns a zero matrix.
func NewMat(rows, cols int) *Mat {
	return &Mat{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// MatFrom wraps existing storage (len must be rows*cols).
func MatFrom(rows, cols int, data []float32) *Mat {
	assertLen(rows*cols, len(data))
	return &Mat{Rows: rows, Cols: cols, Data: data}
}

// At returns element (r, c).
func (m *Mat) At(r, c int) float32 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Mat) Set(r, c int, x float32) { m.Data[r*m.Cols+c] = x }

// Row returns row r as a slice into the matrix storage.
func (m *Mat) Row(r int) Vec { return Vec(m.Data[r*m.Cols : (r+1)*m.Cols]) }

// Zero clears the matrix.
func (m *Mat) Zero() { Vec(m.Data).Zero() }

// MatVec computes dst = m · x. dst must have length m.Rows and must not
// alias x. Each row is one dispatched Dot — wide FMA lanes on SIMD
// backends, which reassociates the row sums (≤1 ulp/element from the
// scalar order; replicas running the same backend remain bit-identical
// to each other).
func (m *Mat) MatVec(dst, x Vec) {
	assertLen(len(dst), m.Rows)
	assertLen(len(x), m.Cols)
	for r := 0; r < m.Rows; r++ {
		dst[r] = Dot(m.Data[r*m.Cols:(r+1)*m.Cols], x)
	}
}

// MatTVec computes dst = mᵀ · x (used for backpropagating through a
// linear layer). dst must have length m.Cols and must not alias x.
func (m *Mat) MatTVec(dst, x Vec) {
	assertLen(len(dst), m.Cols)
	assertLen(len(x), m.Rows)
	dst.Zero()
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		xr := x[r]
		if xr == 0 {
			continue
		}
		Axpy(xr, dst, row)
	}
}

// AddOuter accumulates the rank-1 update m += a · u vᵀ (the weight
// gradient of a linear layer: dW += dy xᵀ).
func (m *Mat) AddOuter(a float32, u, v Vec) {
	assertLen(len(u), m.Rows)
	assertLen(len(v), m.Cols)
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		ur := a * u[r]
		if ur == 0 {
			continue
		}
		Axpy(ur, row, v)
	}
}

// XavierInit fills m with Glorot-uniform samples appropriate for a
// layer with m.Cols inputs and m.Rows outputs.
func (m *Mat) XavierInit(rng *rand.Rand) {
	limit := float32(math.Sqrt(6.0 / float64(m.Rows+m.Cols)))
	for i := range m.Data {
		m.Data[i] = (rng.Float32()*2 - 1) * limit
	}
}

func assertLen(got, want int) {
	if got != want {
		panic(fmt.Sprintf("tensor: length mismatch %d != %d", got, want))
	}
}
