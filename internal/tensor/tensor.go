// Package tensor provides the float32 vector and matrix math the
// neural-network and RL packages build on. Gradients travel the network
// as raw float32, matching the paper's in-switch adders, so the whole
// stack stays in float32.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Vec is a dense float32 vector.
type Vec []float32

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Clone returns a copy of v.
func (v Vec) Clone() Vec { return append(Vec(nil), v...) }

// Zero sets every element to 0.
func (v Vec) Zero() { Zero(v) }

// Fill sets every element to x.
func (v Vec) Fill(x float32) {
	for i := range v {
		v[i] = x
	}
}

// Add accumulates w into v element-wise. Lengths must match.
func (v Vec) Add(w Vec) { Add(v, w) }

// Sub subtracts w from v element-wise.
func (v Vec) Sub(w Vec) {
	assertLen(len(v), len(w))
	for i := range v {
		v[i] -= w[i]
	}
}

// Scale multiplies every element by a.
func (v Vec) Scale(a float32) { Scale(a, v) }

// Axpy computes v += a*w.
func (v Vec) Axpy(a float32, w Vec) { Axpy(a, v, w) }

// Dot returns the inner product of v and w.
func (v Vec) Dot(w Vec) float32 {
	assertLen(len(v), len(w))
	var s float32
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm2 returns the Euclidean norm.
func (v Vec) Norm2() float32 {
	var s float64
	for _, x := range v {
		s += float64(x) * float64(x)
	}
	return float32(math.Sqrt(s))
}

// ClipNorm rescales v in place so its Euclidean norm is at most c,
// returning the scale applied (1 when no clipping occurred). Gradient
// clipping keeps RL training numerically stable.
func (v Vec) ClipNorm(c float32) float32 {
	if c <= 0 {
		panic("tensor: clip bound must be positive")
	}
	n := v.Norm2()
	if n <= c || n == 0 {
		return 1
	}
	s := c / n
	v.Scale(s)
	return s
}

// ArgMax returns the index of the largest element (first on ties).
func (v Vec) ArgMax() int {
	if len(v) == 0 {
		panic("tensor: ArgMax of empty vector")
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// Max returns the largest element.
func (v Vec) Max() float32 { return v[v.ArgMax()] }

// Softmax writes the softmax of v into dst (which may alias v) using
// the max-subtraction trick for stability.
func Softmax(dst, v Vec) {
	assertLen(len(dst), len(v))
	m := v.Max()
	var sum float32
	for i, x := range v {
		e := float32(math.Exp(float64(x - m)))
		dst[i] = e
		sum += e
	}
	for i := range dst {
		dst[i] /= sum
	}
}

// Mat is a dense row-major float32 matrix.
type Mat struct {
	Rows, Cols int
	Data       []float32
}

// NewMat returns a zero matrix.
func NewMat(rows, cols int) *Mat {
	return &Mat{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// MatFrom wraps existing storage (len must be rows*cols).
func MatFrom(rows, cols int, data []float32) *Mat {
	assertLen(rows*cols, len(data))
	return &Mat{Rows: rows, Cols: cols, Data: data}
}

// At returns element (r, c).
func (m *Mat) At(r, c int) float32 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Mat) Set(r, c int, x float32) { m.Data[r*m.Cols+c] = x }

// Row returns row r as a slice into the matrix storage.
func (m *Mat) Row(r int) Vec { return Vec(m.Data[r*m.Cols : (r+1)*m.Cols]) }

// Zero clears the matrix.
func (m *Mat) Zero() { Vec(m.Data).Zero() }

// MatVec computes dst = m · x. dst must have length m.Rows and must not
// alias x.
func (m *Mat) MatVec(dst, x Vec) {
	assertLen(len(dst), m.Rows)
	assertLen(len(x), m.Cols)
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		// Single-accumulator 4x unroll: same additions in the same
		// order as the scalar loop, so dot products stay bit-identical.
		var s float32
		xs := x
		for len(row) >= 4 && len(xs) >= 4 {
			s += row[0] * xs[0]
			s += row[1] * xs[1]
			s += row[2] * xs[2]
			s += row[3] * xs[3]
			row, xs = row[4:], xs[4:]
		}
		for c, w := range row {
			s += w * xs[c]
		}
		dst[r] = s
	}
}

// MatTVec computes dst = mᵀ · x (used for backpropagating through a
// linear layer). dst must have length m.Cols and must not alias x.
func (m *Mat) MatTVec(dst, x Vec) {
	assertLen(len(dst), m.Cols)
	assertLen(len(x), m.Rows)
	dst.Zero()
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		xr := x[r]
		if xr == 0 {
			continue
		}
		Axpy(xr, dst, row)
	}
}

// AddOuter accumulates the rank-1 update m += a · u vᵀ (the weight
// gradient of a linear layer: dW += dy xᵀ).
func (m *Mat) AddOuter(a float32, u, v Vec) {
	assertLen(len(u), m.Rows)
	assertLen(len(v), m.Cols)
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		ur := a * u[r]
		if ur == 0 {
			continue
		}
		Axpy(ur, row, v)
	}
}

// XavierInit fills m with Glorot-uniform samples appropriate for a
// layer with m.Cols inputs and m.Rows outputs.
func (m *Mat) XavierInit(rng *rand.Rand) {
	limit := float32(math.Sqrt(6.0 / float64(m.Rows+m.Cols)))
	for i := range m.Data {
		m.Data[i] = (rng.Float32()*2 - 1) * limit
	}
}

func assertLen(got, want int) {
	if got != want {
		panic(fmt.Sprintf("tensor: length mismatch %d != %d", got, want))
	}
}
