package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVecBasics(t *testing.T) {
	v := Vec{1, 2, 3}
	w := Vec{4, 5, 6}
	c := v.Clone()
	v.Add(w)
	if v[0] != 5 || v[1] != 7 || v[2] != 9 {
		t.Fatalf("Add = %v", v)
	}
	if c[0] != 1 {
		t.Fatal("Clone aliases")
	}
	v.Sub(w)
	if v[0] != 1 || v[2] != 3 {
		t.Fatalf("Sub = %v", v)
	}
	v.Scale(2)
	if v[1] != 4 {
		t.Fatalf("Scale = %v", v)
	}
	v.Zero()
	if v.Norm2() != 0 {
		t.Fatal("Zero failed")
	}
	v.Fill(3)
	if v[0] != 3 || v[2] != 3 {
		t.Fatalf("Fill = %v", v)
	}
}

func TestDotAxpyNorm(t *testing.T) {
	v := Vec{1, 2, 3}
	w := Vec{4, 5, 6}
	if got := v.Dot(w); got != 32 {
		t.Fatalf("Dot = %v", got)
	}
	v.Axpy(2, w)
	if v[0] != 9 || v[1] != 12 || v[2] != 15 {
		t.Fatalf("Axpy = %v", v)
	}
	u := Vec{3, 4}
	if got := u.Norm2(); got != 5 {
		t.Fatalf("Norm2 = %v", got)
	}
}

func TestClipNorm(t *testing.T) {
	v := Vec{3, 4}
	if s := v.ClipNorm(10); s != 1 || v[0] != 3 {
		t.Fatalf("no-op clip changed vector: s=%v v=%v", s, v)
	}
	if s := v.ClipNorm(1); math.Abs(float64(s)-0.2) > 1e-6 {
		t.Fatalf("clip scale = %v", s)
	}
	if n := v.Norm2(); math.Abs(float64(n)-1) > 1e-6 {
		t.Fatalf("clipped norm = %v", n)
	}
	z := Vec{0, 0}
	if s := z.ClipNorm(1); s != 1 {
		t.Fatalf("zero-vector clip = %v", s)
	}
}

func TestArgMax(t *testing.T) {
	if got := (Vec{1, 5, 5, 2}).ArgMax(); got != 1 {
		t.Fatalf("ArgMax tie = %d, want first max", got)
	}
	if got := (Vec{-3, -1, -2}).Max(); got != -1 {
		t.Fatalf("Max = %v", got)
	}
}

func TestSoftmax(t *testing.T) {
	v := Vec{1, 2, 3}
	out := NewVec(3)
	Softmax(out, v)
	var sum float32
	for _, x := range out {
		if x <= 0 || x >= 1 {
			t.Fatalf("softmax out of range: %v", out)
		}
		sum += x
	}
	if math.Abs(float64(sum)-1) > 1e-5 {
		t.Fatalf("softmax sum = %v", sum)
	}
	if !(out[2] > out[1] && out[1] > out[0]) {
		t.Fatalf("softmax not monotone: %v", out)
	}
	// Large logits must not overflow.
	big := Vec{1000, 1001}
	Softmax(big, big)
	if math.IsNaN(float64(big[0])) || math.IsInf(float64(big[1]), 0) {
		t.Fatalf("softmax unstable: %v", big)
	}
}

func TestMatVec(t *testing.T) {
	m := MatFrom(2, 3, []float32{1, 2, 3, 4, 5, 6})
	x := Vec{1, 1, 1}
	dst := NewVec(2)
	m.MatVec(dst, x)
	if dst[0] != 6 || dst[1] != 15 {
		t.Fatalf("MatVec = %v", dst)
	}
}

func TestMatTVec(t *testing.T) {
	m := MatFrom(2, 3, []float32{1, 2, 3, 4, 5, 6})
	x := Vec{1, 2}
	dst := NewVec(3)
	m.MatTVec(dst, x)
	if dst[0] != 9 || dst[1] != 12 || dst[2] != 15 {
		t.Fatalf("MatTVec = %v", dst)
	}
}

func TestAddOuter(t *testing.T) {
	m := NewMat(2, 2)
	m.AddOuter(2, Vec{1, 2}, Vec{3, 4})
	want := []float32{6, 8, 12, 16}
	for i, x := range m.Data {
		if x != want[i] {
			t.Fatalf("AddOuter = %v", m.Data)
		}
	}
}

func TestMatAccessors(t *testing.T) {
	m := NewMat(3, 2)
	m.Set(2, 1, 7)
	if m.At(2, 1) != 7 {
		t.Fatal("Set/At mismatch")
	}
	r := m.Row(2)
	if r[1] != 7 {
		t.Fatalf("Row = %v", r)
	}
	r[0] = 5
	if m.At(2, 0) != 5 {
		t.Fatal("Row is not a view")
	}
	m.Zero()
	if m.At(2, 1) != 0 {
		t.Fatal("Zero failed")
	}
}

func TestXavierInitBounds(t *testing.T) {
	m := NewMat(10, 20)
	m.XavierInit(rand.New(rand.NewSource(1)))
	limit := float32(math.Sqrt(6.0 / 30.0))
	var nonzero int
	for _, x := range m.Data {
		if x < -limit || x > limit {
			t.Fatalf("init %v outside ±%v", x, limit)
		}
		if x != 0 {
			nonzero++
		}
	}
	if nonzero < 150 {
		t.Fatalf("suspiciously many zeros: %d nonzero of 200", nonzero)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched Add")
		}
	}()
	(Vec{1}).Add(Vec{1, 2})
}

// Property: (mᵀ)·(m·x) agrees with a float64 reference within tolerance.
func TestMatVecQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := rng.Intn(8)+1, rng.Intn(8)+1
		m := NewMat(rows, cols)
		x := NewVec(cols)
		for i := range m.Data {
			m.Data[i] = rng.Float32()*2 - 1
		}
		for i := range x {
			x[i] = rng.Float32()*2 - 1
		}
		y := NewVec(rows)
		m.MatVec(y, x)
		for r := 0; r < rows; r++ {
			var ref float64
			for c := 0; c < cols; c++ {
				ref += float64(m.At(r, c)) * float64(x[c])
			}
			if math.Abs(ref-float64(y[r])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dot is symmetric and Axpy is linear in its scalar.
func TestVecAlgebraQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(16) + 1
		v, w := NewVec(n), NewVec(n)
		for i := 0; i < n; i++ {
			v[i] = rng.Float32()
			w[i] = rng.Float32()
		}
		if math.Abs(float64(v.Dot(w)-w.Dot(v))) > 1e-4 {
			return false
		}
		a := rng.Float32()
		u1 := v.Clone()
		u1.Axpy(a, w)
		for i := 0; i < n; i++ {
			ref := float64(v[i]) + float64(a)*float64(w[i])
			if math.Abs(ref-float64(u1[i])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
