// Package protocol implements the iSwitch wire format.
//
// iSwitch rides on ordinary Ethernet/IPv4/UDP frames and claims two
// reserved values of the IP Type-of-Service byte to mark its traffic
// (paper §3.2, Figure 5): one for control packets and one for data
// packets. A control packet carries a one-byte Action plus an optional
// Value payload; a data packet carries an 8-byte segment index (Seg)
// followed by raw little-endian float32 gradient data.
package protocol

import (
	"encoding/binary"
	"fmt"
)

// Reserved ToS values tagging iSwitch traffic. Any other ToS means the
// packet is regular traffic and must be forwarded untouched.
const (
	ToSRegular = 0x00
	ToSControl = 0x41
	ToSData    = 0x42
)

// Frame and header geometry (bytes). The paper uses standard Ethernet
// with a 1522-byte maximum frame (1500-byte IP MTU plus 802.1Q tag room).
const (
	EthernetHeaderLen = 14
	IPv4HeaderLen     = 20
	UDPHeaderLen      = 8
	SegFieldLen       = 8
	MaxFrameLen       = 1522
	IPMTU             = 1500

	// MaxDataPayload is the gradient bytes that fit in one data packet:
	// IP MTU minus IP, UDP, and Seg headers.
	MaxDataPayload = IPMTU - IPv4HeaderLen - UDPHeaderLen - SegFieldLen // 1464

	// FloatsPerPacket is MaxDataPayload expressed in float32 elements.
	FloatsPerPacket = MaxDataPayload / 4 // 366
)

// JobID identifies the training job a packet belongs to on a
// multi-tenant fabric. iSwitch's single-job protocol leaves the IPv4
// Identification field zero (wire.go); the multi-tenant extension
// claims those 16 bits the same way the base protocol claims the ToS
// byte — so tagging a packet with its job costs zero wire bytes and
// legacy single-job traffic is exactly job 0.
type JobID uint16

// DefaultJob is the implicit job of untagged (single-tenant) traffic.
const DefaultJob JobID = 0

// Action codes for control messages (paper Table 2).
type Action uint8

const (
	ActionInvalid Action = iota
	ActionJoin           // join the training job
	ActionLeave          // leave the training job
	ActionReset          // clear accelerator buffers/counters on the switch
	ActionSetH           // set the aggregation threshold H on the switch
	ActionFBcast         // force broadcast of a partially aggregated segment
	ActionHelp           // request a lost data packet for a worker
	ActionHalt           // suspend the training job on all workers
	ActionAck            // confirm success/failure of actions
)

var actionNames = map[Action]string{
	ActionJoin:   "Join",
	ActionLeave:  "Leave",
	ActionReset:  "Reset",
	ActionSetH:   "SetH",
	ActionFBcast: "FBcast",
	ActionHelp:   "Help",
	ActionHalt:   "Halt",
	ActionAck:    "Ack",
}

// String returns the paper's name for the action.
func (a Action) String() string {
	if s, ok := actionNames[a]; ok {
		return s
	}
	return fmt.Sprintf("Action(%d)", uint8(a))
}

// Describe returns the paper's one-line description (Table 2).
func (a Action) Describe() string {
	switch a {
	case ActionJoin:
		return "Join the training job"
	case ActionLeave:
		return "Leave the training job"
	case ActionReset:
		return "Clear accelerator buffers/counters on the switch"
	case ActionSetH:
		return "Set the aggregation threshold H on the switch"
	case ActionFBcast:
		return "Force broadcasting a partially aggregated segment on the switch"
	case ActionHelp:
		return "Request a lost data packet for a worker"
	case ActionHalt:
		return "Suspend the training job on all workers"
	case ActionAck:
		return "Confirm the success/failure of actions"
	}
	return "unknown"
}

// Actions lists all defined control actions in Table 2 order.
func Actions() []Action {
	return []Action{ActionJoin, ActionLeave, ActionReset, ActionSetH,
		ActionFBcast, ActionHelp, ActionHalt, ActionAck}
}

// Addr is an IPv4 address plus UDP port, the identity a worker or switch
// presents to the iSwitch control plane.
type Addr struct {
	IP   [4]byte
	Port uint16
}

// String formats the address in dotted-quad:port form.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d:%d", a.IP[0], a.IP[1], a.IP[2], a.IP[3], a.Port)
}

// AddrFrom builds an Addr from four octets and a port.
func AddrFrom(a, b, c, d byte, port uint16) Addr {
	return Addr{IP: [4]byte{a, b, c, d}, Port: port}
}

// Packet is a parsed iSwitch packet. Exactly one of the control fields
// (Action/Value) or the data fields (Seg/Data) is meaningful, selected
// by ToS.
type Packet struct {
	Src Addr
	Dst Addr
	ToS uint8

	// Job scopes the packet to one training job on a multi-tenant
	// fabric (0 = the default single-tenant job). Carried in the IPv4
	// Identification field, so it adds no wire bytes.
	Job JobID

	// Control packet fields (ToS == ToSControl).
	Action Action
	Value  []byte

	// Data packet fields (ToS == ToSData).
	Seg  uint64
	Data []float32

	// Compression fields (compress.go). Enc tags the data encoding
	// (CompNone = raw float32 in Data). CompInt32Block packets carry
	// quantized values in QData plus the emission-narrowing Shift;
	// CompTopK packets carry sparse indices in Idx with their values in
	// Data; CompFP16 packets keep rounded floats in Data but are charged
	// 2 wire bytes per element.
	Enc   Compression
	Shift uint8
	QData []int32
	Idx   []uint16

	// Pooling state (pool.go). pooled marks frames from GetPacket;
	// dataBuf/valueBuf/qBuf/idxBuf are owned backing arrays kept across
	// Release so a recycled frame reuses its payload capacity.
	pooled   bool
	dataBuf  []float32
	valueBuf []byte
	qBuf     []int32
	idxBuf   []uint16
}

// IsControl reports whether the packet is an iSwitch control packet.
func (p *Packet) IsControl() bool { return p.ToS == ToSControl }

// IsData reports whether the packet is an iSwitch data packet.
func (p *Packet) IsData() bool { return p.ToS == ToSData }

// IsISwitch reports whether the packet belongs to the iSwitch protocol.
func (p *Packet) IsISwitch() bool { return p.IsControl() || p.IsData() }

// WireLen returns the packet's on-the-wire frame length in bytes,
// including Ethernet, IP, and UDP headers. It is the quantity the
// network simulator charges against link bandwidth; for compressed
// encodings it models the layout documented in compress.go even though
// the in-memory payload stays wide.
func (p *Packet) WireLen() int {
	n := EthernetHeaderLen + IPv4HeaderLen + UDPHeaderLen
	if p.IsControl() {
		return n + 1 + len(p.Value)
	}
	if p.IsServe() {
		// Serve frames reuse the data layout with Seg carrying the
		// request ID and a raw float32 payload (serve.go).
		return n + SegFieldLen + 4*len(p.Data)
	}
	if p.IsData() {
		n += SegFieldLen
		switch p.Enc {
		case CompFP16:
			return n + 2*len(p.Data)
		case CompInt32Block:
			return n + ShiftFieldLen + 2*len(p.QData)
		case CompTopK:
			// Always the sparse layout: dense top-k emissions travel as
			// CompNone, so a CompTopK tag means a worker selection — and
			// an empty selection is a legal (count-only) packet.
			return n + CountFieldLen + SparseEntryLen*len(p.Idx)
		default:
			return n + 4*len(p.Data)
		}
	}
	return n
}

// Clone returns a deep copy of the packet. Switches that broadcast one
// aggregated packet to many receivers clone so receivers cannot alias
// each other's payload.
func (p *Packet) Clone() *Packet {
	q := *p
	// The clone is an independent unpooled packet: it must not inherit
	// the original's pooled mark or alias its backing arrays.
	q.pooled, q.dataBuf, q.valueBuf, q.qBuf, q.idxBuf = false, nil, nil, nil, nil
	if p.Value != nil {
		q.Value = append([]byte(nil), p.Value...)
	}
	if p.Data != nil {
		q.Data = append([]float32(nil), p.Data...)
	}
	if p.QData != nil {
		q.QData = append([]int32(nil), p.QData...)
	}
	if p.Idx != nil {
		q.Idx = append([]uint16(nil), p.Idx...)
	}
	return &q
}

// NewControl builds a control packet.
func NewControl(src, dst Addr, action Action, value []byte) *Packet {
	return &Packet{Src: src, Dst: dst, ToS: ToSControl, Action: action, Value: value}
}

// NewData builds a data packet carrying one gradient segment.
func NewData(src, dst Addr, seg uint64, data []float32) *Packet {
	if len(data) > FloatsPerPacket {
		panic(fmt.Sprintf("protocol: segment of %d floats exceeds packet capacity %d",
			len(data), FloatsPerPacket))
	}
	return &Packet{Src: src, Dst: dst, ToS: ToSData, Seg: seg, Data: data}
}

// SetHValue encodes the aggregation-threshold payload for a SetH control
// message.
func SetHValue(h uint32) []byte {
	v := make([]byte, 4)
	binary.LittleEndian.PutUint32(v, h)
	return v
}

// ParseSetH decodes the payload of a SetH control message.
func ParseSetH(value []byte) (uint32, error) {
	if len(value) != 4 {
		return 0, fmt.Errorf("protocol: SetH value must be 4 bytes, got %d", len(value))
	}
	return binary.LittleEndian.Uint32(value), nil
}

// JoinValue encodes the Join metadata payload: the model's gradient
// vector length in float32 elements, from which both sides derive the
// segment count.
func JoinValue(modelFloats uint64) []byte {
	v := make([]byte, 8)
	binary.LittleEndian.PutUint64(v, modelFloats)
	return v
}

// ParseJoin decodes a Join payload.
func ParseJoin(value []byte) (modelFloats uint64, err error) {
	if len(value) != 8 {
		return 0, fmt.Errorf("protocol: Join value must be 8 bytes, got %d", len(value))
	}
	return binary.LittleEndian.Uint64(value), nil
}

// HelpValue encodes a Help payload: the Seg index of the lost packet.
func HelpValue(seg uint64) []byte {
	v := make([]byte, 8)
	binary.LittleEndian.PutUint64(v, seg)
	return v
}

// ParseHelp decodes a Help payload.
func ParseHelp(value []byte) (seg uint64, err error) {
	if len(value) != 8 {
		return 0, fmt.Errorf("protocol: Help value must be 8 bytes, got %d", len(value))
	}
	return binary.LittleEndian.Uint64(value), nil
}

// AckOK and AckFail are the two Ack payloads.
var (
	AckOK   = []byte{1}
	AckFail = []byte{0}
)
