package protocol

import "fmt"

// Gradient compression schemes. The scheme is a per-job property,
// negotiated once at Join time (the Join payload carries a scheme byte,
// see JoinValueScheme) and fixed for the job's lifetime: every data
// packet of the job is encoded under the job's scheme, and the switch
// validates the two against each other rather than trusting the packet.
//
// Wire layouts per scheme (UDP payload, after the 8-byte Seg field):
//
//	CompNone       raw little-endian float32, 4 B/element
//	CompFP16       IEEE half precision, 2 B/element
//	CompInt32Block 1-byte Shift, then int16 quantized values, 2 B/element
//	CompTopK       2-byte entry count, then (uint16 index, float32 value)
//	               entries, 6 B/entry — or a dense CompNone-layout packet
//	               for switch-emitted aggregates and tree partials
//
// The DES keeps payloads in memory and only *models* these byte counts
// (WireLen); Marshal/AppendPayload reject compressed packets, since the
// real-UDP transport negotiates CompNone.
type Compression uint8

const (
	// CompNone is the paper's raw float32 format.
	CompNone Compression = iota
	// CompFP16 rounds every element through IEEE half precision and
	// carries 2 bytes per element. Aggregation stays float32 on the
	// switch (FPISA-style), so the scheme is stateless and works under
	// every strategy that frames data packets the standard way.
	CompFP16
	// CompInt32Block carries block-scaled int16 values that the switch
	// accumulates as int32 — exactly associative, so the aggregate is
	// bit-identical under any packet arrival order. Workers derive the
	// per-segment scale speculatively from the previous round's
	// aggregate; no scale travels on the wire beyond the 1-byte
	// emission-narrowing Shift.
	CompInt32Block
	// CompTopK sends only the top-k largest-magnitude elements per
	// round as (index, value) pairs; the switch scatter-adds them into
	// a dense float32 slot and emits dense aggregates.
	CompTopK

	compCount // number of schemes; keep last
)

var compNames = [compCount]string{"none", "fp16", "int32block", "topk"}

// String returns the scheme's short name.
func (c Compression) String() string {
	if int(c) < len(compNames) {
		return compNames[c]
	}
	return fmt.Sprintf("Compression(%d)", uint8(c))
}

// Valid reports whether c names a defined scheme.
func (c Compression) Valid() bool { return c < compCount }

// Compressions lists all defined schemes.
func Compressions() []Compression {
	return []Compression{CompNone, CompFP16, CompInt32Block, CompTopK}
}

// Per-packet overhead bytes beyond the Seg field, by encoding.
const (
	ShiftFieldLen  = 1 // CompInt32Block: emission-narrowing shift
	CountFieldLen  = 2 // CompTopK: sparse entry count
	SparseEntryLen = 6 // CompTopK: uint16 index + float32 value
)

// JoinValueScheme encodes the Join metadata payload carrying both the
// model's gradient length and the job's compression scheme. A plain
// 8-byte JoinValue payload parses as scheme CompNone, so pre-compression
// workers interoperate unchanged.
func JoinValueScheme(modelFloats uint64, scheme Compression) []byte {
	return append(JoinValue(modelFloats), byte(scheme))
}

// ParseJoinScheme decodes a Join payload in either form: 8 bytes
// (legacy, scheme CompNone) or 9 bytes (trailing scheme byte).
func ParseJoinScheme(value []byte) (modelFloats uint64, scheme Compression, err error) {
	switch len(value) {
	case 8:
		modelFloats, err = ParseJoin(value[:8])
		return modelFloats, CompNone, err
	case 9:
		modelFloats, err = ParseJoin(value[:8])
		if err != nil {
			return 0, 0, err
		}
		scheme = Compression(value[8])
		if !scheme.Valid() {
			return 0, 0, fmt.Errorf("protocol: Join names unknown compression scheme %d", value[8])
		}
		return modelFloats, scheme, nil
	default:
		return 0, 0, fmt.Errorf("protocol: Join value must be 8 or 9 bytes, got %d", len(value))
	}
}

// NewQData builds a block-scaled quantized data packet. The payload
// aliases q; shift is the emission-narrowing exponent (zero on the
// worker→switch leg).
func NewQData(src, dst Addr, seg uint64, q []int32, shift uint8) *Packet {
	if len(q) > FloatsPerPacket {
		panic(fmt.Sprintf("protocol: quantized segment of %d elements exceeds packet capacity %d",
			len(q), FloatsPerPacket))
	}
	return &Packet{Src: src, Dst: dst, ToS: ToSData, Seg: seg,
		Enc: CompInt32Block, Shift: shift, QData: q}
}

// NewSparseData builds a top-k sparse data packet carrying parallel
// index/value slices (aliased, not copied). Empty is legal — a segment
// with no selected elements still sends one packet so the switch's
// per-segment contribution count advances.
func NewSparseData(src, dst Addr, seg uint64, idx []uint16, vals []float32) *Packet {
	if len(idx) != len(vals) {
		panic("protocol: sparse index/value length mismatch")
	}
	if len(idx) > FloatsPerPacket {
		panic(fmt.Sprintf("protocol: sparse segment of %d entries exceeds packet capacity %d",
			len(idx), FloatsPerPacket))
	}
	return &Packet{Src: src, Dst: dst, ToS: ToSData, Seg: seg,
		Enc: CompTopK, Idx: idx, Data: vals}
}
