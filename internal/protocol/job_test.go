package protocol

import "testing"

// The multi-tenant JobID rides in the IPv4 Identification field: it
// must survive a full Marshal/Unmarshal round trip on both packet
// kinds, cost zero wire bytes, and default to the single-tenant job 0.

func TestJobIDWireRoundTrip(t *testing.T) {
	src := AddrFrom(10, 0, 0, 2, 7000)
	dst := AddrFrom(10, 0, 0, 1, 9990)

	data := NewData(src, dst, 42, []float32{1, 2, 3})
	data.Job = 0xBEEF
	ctrl := NewControl(src, dst, ActionJoin, JoinValue(100))
	ctrl.Job = 7

	for _, p := range []*Packet{data, ctrl} {
		frame, err := Marshal(p)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		q, err := Unmarshal(frame)
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if q.Job != p.Job {
			t.Fatalf("job %d round-tripped to %d", p.Job, q.Job)
		}
	}
}

func TestJobIDCostsNoWireBytes(t *testing.T) {
	src := AddrFrom(10, 0, 0, 2, 7000)
	dst := AddrFrom(10, 0, 0, 1, 9990)
	tagged := NewData(src, dst, 3, []float32{1, 2})
	tagged.Job = 9
	plain := NewData(src, dst, 3, []float32{1, 2})
	if tagged.WireLen() != plain.WireLen() {
		t.Fatalf("job tag changed WireLen: %d vs %d", tagged.WireLen(), plain.WireLen())
	}
	tf, err := Marshal(tagged)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	if len(tf) != len(pf) {
		t.Fatalf("job tag changed frame length: %d vs %d", len(tf), len(pf))
	}
}

func TestJobIDDefaultsToZeroAndClones(t *testing.T) {
	p := NewData(AddrFrom(1, 2, 3, 4, 5), AddrFrom(5, 6, 7, 8, 9), 0, []float32{1})
	if p.Job != DefaultJob {
		t.Fatalf("untagged packet has job %d", p.Job)
	}
	p.Job = 12
	if q := p.Clone(); q.Job != 12 {
		t.Fatalf("clone lost job tag: %d", q.Job)
	}
}
