package protocol

import "fmt"

// Gradient packetization. A gradient vector of n float32 elements is
// carried in ceil(n / FloatsPerPacket) data packets; packet Seg s holds
// elements [s*FloatsPerPacket, min(n, (s+1)*FloatsPerPacket)). The Seg
// number is the spatial offset key the in-switch accelerator aggregates
// on (paper §3.2).

// SegmentCount returns the number of data packets needed for a gradient
// vector of n float32 elements.
func SegmentCount(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + FloatsPerPacket - 1) / FloatsPerPacket
}

// SegmentCountWith is SegmentCount for a custom per-packet payload.
func SegmentCountWith(n, perPacket int) int {
	if n <= 0 {
		return 0
	}
	return (n + perPacket - 1) / perPacket
}

// SegmentRange returns the element range [lo, hi) carried by segment s
// of an n-element vector.
func SegmentRange(n int, s uint64) (lo, hi int) {
	return SegmentRangeWith(n, s, FloatsPerPacket)
}

// SegmentRangeWith is SegmentRange for a custom per-packet payload.
func SegmentRangeWith(n int, s uint64, perPacket int) (lo, hi int) {
	lo = int(s) * perPacket
	hi = lo + perPacket
	if hi > n {
		hi = n
	}
	if lo > n {
		lo = n
	}
	return lo, hi
}

// Segment splits grad into data packets addressed src→dst. The packets
// alias grad's backing array; callers that mutate grad before the
// packets are consumed must copy first.
func Segment(src, dst Addr, grad []float32) []*Packet {
	return SegmentWith(src, dst, grad, FloatsPerPacket)
}

// SegmentWith is Segment with a custom per-packet payload (1 to
// FloatsPerPacket float32 elements), used by the packet-size ablation.
func SegmentWith(src, dst Addr, grad []float32, perPacket int) []*Packet {
	if perPacket < 1 || perPacket > FloatsPerPacket {
		panic(fmt.Sprintf("protocol: per-packet payload %d out of range [1,%d]",
			perPacket, FloatsPerPacket))
	}
	pkts := make([]*Packet, 0, SegmentCountWith(len(grad), perPacket))
	for s := uint64(0); int(s) < SegmentCountWith(len(grad), perPacket); s++ {
		lo, hi := SegmentRangeWith(len(grad), s, perPacket)
		pkts = append(pkts, NewData(src, dst, s, grad[lo:hi]))
	}
	return pkts
}

// Assembler reassembles a gradient vector from data packets, tracking
// which segments have arrived. It is how a worker reconstructs the
// aggregated gradient broadcast back by the switch.
type Assembler struct {
	vec       []float32
	got       []bool
	remaining int
	perPacket int
}

// NewAssembler creates an assembler for an n-element vector.
func NewAssembler(n int) *Assembler { return NewAssemblerWith(n, FloatsPerPacket) }

// NewAssemblerWith creates an assembler expecting segments of perPacket
// elements (matching SegmentWith).
func NewAssemblerWith(n, perPacket int) *Assembler {
	segs := SegmentCountWith(n, perPacket)
	return &Assembler{vec: make([]float32, n), got: make([]bool, segs),
		remaining: segs, perPacket: perPacket}
}

// Add places a data packet's payload at its segment offset. Duplicate
// segments overwrite (idempotent retransmits); mismatched lengths and
// out-of-range segments are errors.
func (a *Assembler) Add(p *Packet) error {
	if !p.IsData() {
		return fmt.Errorf("protocol: assembler given non-data packet (ToS %#02x)", p.ToS)
	}
	if p.Seg >= uint64(len(a.got)) {
		return fmt.Errorf("protocol: segment %d out of range (have %d)", p.Seg, len(a.got))
	}
	lo, hi := SegmentRangeWith(len(a.vec), p.Seg, a.perPacket)
	if len(p.Data) != hi-lo {
		return fmt.Errorf("protocol: segment %d carries %d floats, want %d", p.Seg, len(p.Data), hi-lo)
	}
	copy(a.vec[lo:hi], p.Data)
	if !a.got[p.Seg] {
		a.got[p.Seg] = true
		a.remaining--
	}
	return nil
}

// AddFloats places an already-decoded payload at segment seg, the entry
// point for compressed packets whose floats were reconstructed by a
// codec rather than carried in Packet.Data. Same duplicate/range rules
// as Add.
func (a *Assembler) AddFloats(seg uint64, vals []float32) error {
	if seg >= uint64(len(a.got)) {
		return fmt.Errorf("protocol: segment %d out of range (have %d)", seg, len(a.got))
	}
	lo, hi := SegmentRangeWith(len(a.vec), seg, a.perPacket)
	if len(vals) != hi-lo {
		return fmt.Errorf("protocol: segment %d carries %d floats, want %d", seg, len(vals), hi-lo)
	}
	copy(a.vec[lo:hi], vals)
	if !a.got[seg] {
		a.got[seg] = true
		a.remaining--
	}
	return nil
}

// Complete reports whether every segment has arrived.
func (a *Assembler) Complete() bool { return a.remaining == 0 }

// Remaining reports how many segments are still missing.
func (a *Assembler) Remaining() int { return a.remaining }

// Missing lists the segment indices not yet received, in order. Workers
// put these in Help control messages to request retransmission.
func (a *Assembler) Missing() []uint64 {
	var m []uint64
	for s, ok := range a.got {
		if !ok {
			m = append(m, uint64(s))
		}
	}
	return m
}

// Vector returns the assembled vector. Valid once Complete is true; the
// returned slice is the assembler's backing store.
func (a *Assembler) Vector() []float32 { return a.vec }

// Reset clears arrival state for reuse in the next iteration without
// reallocating.
func (a *Assembler) Reset() {
	for i := range a.got {
		a.got[i] = false
	}
	a.remaining = len(a.got)
}
