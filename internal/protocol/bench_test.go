package protocol

import "testing"

func benchAddrs() (Addr, Addr) {
	return AddrFrom(10, 0, 0, 2, 9999), AddrFrom(10, 0, 0, 1, 9990)
}

// BenchmarkMarshalDataPacket measures encoding one full gradient packet
// to a complete Ethernet frame.
func BenchmarkMarshalDataPacket(b *testing.B) {
	src, dst := benchAddrs()
	p := NewData(src, dst, 7, make([]float32, FloatsPerPacket))
	b.SetBytes(int64(p.WireLen()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnmarshalDataPacket measures parsing a full frame back.
func BenchmarkUnmarshalDataPacket(b *testing.B) {
	src, dst := benchAddrs()
	frame, err := Marshal(NewData(src, dst, 7, make([]float32, FloatsPerPacket)))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSegmentDQNGradient measures packetizing the paper's largest
// gradient (6.41 MB → 4379 packets).
func BenchmarkSegmentDQNGradient(b *testing.B) {
	src, dst := benchAddrs()
	grad := make([]float32, 1_602_500)
	b.SetBytes(int64(4 * len(grad)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkts := Segment(src, dst, grad)
		if len(pkts) != SegmentCount(len(grad)) {
			b.Fatal("bad segmentation")
		}
	}
}

// BenchmarkAssembleDQNGradient measures reassembling it.
func BenchmarkAssembleDQNGradient(b *testing.B) {
	src, dst := benchAddrs()
	grad := make([]float32, 1_602_500)
	pkts := Segment(src, dst, grad)
	b.SetBytes(int64(4 * len(grad)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		asm := NewAssembler(len(grad))
		for _, p := range pkts {
			if err := asm.Add(p); err != nil {
				b.Fatal(err)
			}
		}
		if !asm.Complete() {
			b.Fatal("incomplete")
		}
	}
}
