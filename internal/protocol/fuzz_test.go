package protocol

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Unmarshal must never panic on arbitrary bytes — the switch data plane
// sees whatever the wire carries.
func TestUnmarshalNeverPanicsQuick(t *testing.T) {
	f := func(seed int64, n16 uint16) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		buf := make([]byte, int(n16)%2048)
		rng.Read(buf)
		_, _ = Unmarshal(buf)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Mutated valid frames must either parse or error — never panic, and
// never mis-parse into an out-of-range segment payload.
func TestUnmarshalMutatedFrames(t *testing.T) {
	src, dst := AddrFrom(10, 0, 0, 2, 9999), AddrFrom(10, 0, 0, 4, 9998)
	base, err := Marshal(NewData(src, dst, 3, make([]float32, 100)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 2000; trial++ {
		frame := append([]byte(nil), base...)
		// Flip 1–4 random bytes.
		for k := 0; k < rng.Intn(4)+1; k++ {
			frame[rng.Intn(len(frame))] ^= byte(rng.Intn(255) + 1)
		}
		pkt, err := Unmarshal(frame)
		if err != nil {
			continue
		}
		// Parsed despite mutation (e.g. payload-only flips): the shape
		// must still be internally consistent.
		if pkt.IsData() && len(pkt.Data) > FloatsPerPacket {
			t.Fatalf("mutated frame parsed into oversized payload (%d floats)", len(pkt.Data))
		}
	}
}

// UnmarshalPayload on arbitrary bytes must never panic either (the UDP
// transport feeds it raw datagrams).
func TestUnmarshalPayloadNeverPanicsQuick(t *testing.T) {
	f := func(tos uint8, payload []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		if len(payload) > 4096 {
			payload = payload[:4096]
		}
		_, _ = UnmarshalPayload(Addr{}, Addr{}, tos, payload)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
