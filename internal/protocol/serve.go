// Inference-serving wire format (internal/serve).
//
// A trained policy is served over the same Ethernet/IPv4/UDP framing as
// the training protocol, claiming two further ToS values: a request
// carries an observation vector, a response carries the policy's output
// (action logits or values). The 8-byte Seg slot of the data layout is
// reused as a request ID so a client can match responses to requests
// over any replica-selection policy; the Job field tags the serving
// tenant so multi-tenant switches meter and police inference traffic
// exactly like a training job's gradients. Switches never aggregate
// serve packets — IsISwitch stays false, so every fabric forwards them
// as ordinary routed traffic.
package protocol

import "fmt"

// Reserved ToS values tagging inference-serving traffic.
const (
	ToSServeReq  = 0x43
	ToSServeResp = 0x44
)

// IsServeReq reports whether the packet is an inference request.
func (p *Packet) IsServeReq() bool { return p.ToS == ToSServeReq }

// IsServeResp reports whether the packet is an inference response.
func (p *Packet) IsServeResp() bool { return p.ToS == ToSServeResp }

// IsServe reports whether the packet belongs to the serving protocol.
func (p *Packet) IsServe() bool { return p.IsServeReq() || p.IsServeResp() }

// ReqID returns the request identifier of a serve packet (the reused
// Seg field).
func (p *Packet) ReqID() uint64 { return p.Seg }

// NewServeRequest builds a pooled inference request: obs is copied into
// the frame's owned payload, so the caller keeps ownership of its
// slice. Whoever takes delivery should Release the frame.
func NewServeRequest(src, dst Addr, job JobID, id uint64, obs []float32) *Packet {
	return newServe(ToSServeReq, src, dst, job, id, obs)
}

// NewServeResponse builds a pooled inference response carrying the
// policy output for request id (copy-in semantics, like NewServeRequest).
func NewServeResponse(src, dst Addr, job JobID, id uint64, out []float32) *Packet {
	return newServe(ToSServeResp, src, dst, job, id, out)
}

func newServe(tos uint8, src, dst Addr, job JobID, id uint64, data []float32) *Packet {
	if len(data) > FloatsPerPacket {
		panic(fmt.Sprintf("protocol: serve payload of %d floats exceeds packet capacity %d",
			len(data), FloatsPerPacket))
	}
	p := GetPacket()
	p.Src, p.Dst, p.ToS, p.Job, p.Seg = src, dst, tos, job, id
	p.SetDataCopy(data)
	return p
}
