package protocol

import "testing"

func TestServePacketRoundTrip(t *testing.T) {
	src, dst := AddrFrom(10, 2, 0, 2, 9999), AddrFrom(10, 1, 0, 4, 9999)
	obs := []float32{1, 2, 3, 4}
	req := NewServeRequest(src, dst, JobID(7), 42, obs)
	if !req.IsServeReq() || req.IsServeResp() || !req.IsServe() {
		t.Fatalf("request ToS classification wrong: ToS=%#x", req.ToS)
	}
	if req.IsISwitch() {
		t.Fatal("serve request must not be iSwitch traffic (switches would aggregate it)")
	}
	if req.ReqID() != 42 || req.Job != 7 {
		t.Fatalf("id/job = %d/%d, want 42/7", req.ReqID(), req.Job)
	}
	// Copy-in semantics: mutating the caller's slice must not change
	// the frame.
	obs[0] = 99
	if req.Data[0] != 1 {
		t.Fatal("NewServeRequest aliased the caller's observation slice")
	}
	wantWire := EthernetHeaderLen + IPv4HeaderLen + UDPHeaderLen + SegFieldLen + 4*4
	if got := req.WireLen(); got != wantWire {
		t.Fatalf("request WireLen = %d, want %d", got, wantWire)
	}
	req.Release()

	resp := NewServeResponse(dst, src, JobID(7), 42, []float32{0.5, -0.5})
	if !resp.IsServeResp() || resp.IsServeReq() {
		t.Fatalf("response ToS classification wrong: ToS=%#x", resp.ToS)
	}
	if got := resp.WireLen(); got != EthernetHeaderLen+IPv4HeaderLen+UDPHeaderLen+SegFieldLen+4*2 {
		t.Fatalf("response WireLen = %d", got)
	}
	resp.Release()
}

func TestServePayloadCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized serve payload must panic")
		}
	}()
	NewServeRequest(Addr{}, Addr{}, 0, 0, make([]float32, FloatsPerPacket+1))
}
