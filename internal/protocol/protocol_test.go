package protocol

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func addrA() Addr { return AddrFrom(10, 0, 0, 2, 9999) }
func addrB() Addr { return AddrFrom(10, 0, 0, 4, 9998) }

func TestActionsTableComplete(t *testing.T) {
	acts := Actions()
	if len(acts) != 8 {
		t.Fatalf("Table 2 has 8 control messages, got %d", len(acts))
	}
	wantNames := []string{"Join", "Leave", "Reset", "SetH", "FBcast", "Help", "Halt", "Ack"}
	for i, a := range acts {
		if a.String() != wantNames[i] {
			t.Errorf("action %d = %s, want %s", i, a, wantNames[i])
		}
		if a.Describe() == "unknown" {
			t.Errorf("action %s has no description", a)
		}
	}
	if ActionInvalid.String() != "Action(0)" {
		t.Errorf("invalid action formatted as %s", ActionInvalid)
	}
}

func TestControlRoundTrip(t *testing.T) {
	for _, a := range Actions() {
		p := NewControl(addrA(), addrB(), a, []byte{1, 2, 3})
		frame, err := Marshal(p)
		if err != nil {
			t.Fatalf("%s: marshal: %v", a, err)
		}
		q, err := Unmarshal(frame)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", a, err)
		}
		if !q.IsControl() || q.Action != a {
			t.Fatalf("%s: round-trip got action %s", a, q.Action)
		}
		if q.Src != p.Src || q.Dst != p.Dst {
			t.Fatalf("%s: addr mismatch %v→%v", a, q.Src, q.Dst)
		}
		if string(q.Value) != string(p.Value) {
			t.Fatalf("%s: value mismatch %v", a, q.Value)
		}
	}
}

func TestControlNoValue(t *testing.T) {
	p := NewControl(addrA(), addrB(), ActionReset, nil)
	frame, err := Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Unmarshal(frame)
	if err != nil {
		t.Fatal(err)
	}
	if q.Action != ActionReset || len(q.Value) != 0 {
		t.Fatalf("got %s value=%v", q.Action, q.Value)
	}
}

func TestDataRoundTrip(t *testing.T) {
	data := make([]float32, FloatsPerPacket)
	for i := range data {
		data[i] = float32(i) * 0.5
	}
	p := NewData(addrA(), addrB(), 7, data)
	frame, err := Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) > MaxFrameLen {
		t.Fatalf("full data frame %d bytes exceeds max %d", len(frame), MaxFrameLen)
	}
	q, err := Unmarshal(frame)
	if err != nil {
		t.Fatal(err)
	}
	if q.Seg != 7 || len(q.Data) != len(data) {
		t.Fatalf("seg=%d len=%d", q.Seg, len(q.Data))
	}
	for i := range data {
		if q.Data[i] != data[i] {
			t.Fatalf("data[%d] = %v, want %v", i, q.Data[i], data[i])
		}
	}
}

func TestDataRoundTripQuick(t *testing.T) {
	f := func(seg uint64, raw []uint32) bool {
		if len(raw) > FloatsPerPacket {
			raw = raw[:FloatsPerPacket]
		}
		data := make([]float32, len(raw))
		for i, b := range raw {
			data[i] = math.Float32frombits(b)
		}
		p := NewData(addrA(), addrB(), seg, data)
		frame, err := Marshal(p)
		if err != nil {
			return false
		}
		q, err := Unmarshal(frame)
		if err != nil || q.Seg != seg || len(q.Data) != len(data) {
			return false
		}
		for i := range data {
			// Compare bit patterns so NaNs round-trip too.
			if math.Float32bits(q.Data[i]) != math.Float32bits(data[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestControlRoundTripQuick(t *testing.T) {
	f := func(action uint8, value []byte) bool {
		if len(value) > 256 {
			value = value[:256]
		}
		p := NewControl(addrA(), addrB(), Action(action%8+1), value)
		frame, err := Marshal(p)
		if err != nil {
			return false
		}
		q, err := Unmarshal(frame)
		if err != nil || q.Action != p.Action || len(q.Value) != len(value) {
			return false
		}
		for i := range value {
			if q.Value[i] != value[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejectsCorruptChecksum(t *testing.T) {
	p := NewData(addrA(), addrB(), 1, []float32{1, 2, 3})
	frame, err := Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	frame[EthernetHeaderLen+12] ^= 0xff // flip a source-IP byte
	if _, err := Unmarshal(frame); err == nil {
		t.Fatal("corrupt IPv4 header accepted")
	}
}

func TestUnmarshalRejectsShortFrames(t *testing.T) {
	for n := 0; n < EthernetHeaderLen+IPv4HeaderLen+UDPHeaderLen; n += 7 {
		if _, err := Unmarshal(make([]byte, n)); err == nil {
			t.Fatalf("accepted %d-byte frame", n)
		}
	}
}

func TestPayloadRoundTrip(t *testing.T) {
	p := NewData(addrA(), addrB(), 3, []float32{0.25, -1.5})
	payload, err := MarshalPayload(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := UnmarshalPayload(addrA(), addrB(), ToSData, payload)
	if err != nil {
		t.Fatal(err)
	}
	if q.Seg != 3 || q.Data[0] != 0.25 || q.Data[1] != -1.5 {
		t.Fatalf("payload round-trip got %+v", q)
	}
}

func TestSetHValueRoundTrip(t *testing.T) {
	for _, h := range []uint32{1, 4, 12, 1 << 20} {
		got, err := ParseSetH(SetHValue(h))
		if err != nil || got != h {
			t.Fatalf("SetH(%d) round-trip = %d, %v", h, got, err)
		}
	}
	if _, err := ParseSetH([]byte{1, 2}); err == nil {
		t.Fatal("short SetH accepted")
	}
}

func TestJoinAndHelpValues(t *testing.T) {
	n, err := ParseJoin(JoinValue(1_680_000))
	if err != nil || n != 1_680_000 {
		t.Fatalf("Join round-trip = %d, %v", n, err)
	}
	s, err := ParseHelp(HelpValue(1234))
	if err != nil || s != 1234 {
		t.Fatalf("Help round-trip = %d, %v", s, err)
	}
	if _, err := ParseJoin(nil); err == nil {
		t.Fatal("empty Join accepted")
	}
	if _, err := ParseHelp([]byte{9}); err == nil {
		t.Fatal("short Help accepted")
	}
}

func TestWireLenMatchesMarshal(t *testing.T) {
	pkts := []*Packet{
		NewControl(addrA(), addrB(), ActionSetH, SetHValue(4)),
		NewData(addrA(), addrB(), 0, make([]float32, 10)),
		NewData(addrA(), addrB(), 1, make([]float32, FloatsPerPacket)),
	}
	for _, p := range pkts {
		frame, err := Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		if p.WireLen() != len(frame) {
			t.Fatalf("WireLen = %d, marshal produced %d", p.WireLen(), len(frame))
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := NewData(addrA(), addrB(), 0, []float32{1, 2})
	q := p.Clone()
	q.Data[0] = 99
	if p.Data[0] != 1 {
		t.Fatal("clone aliases data")
	}
	c := NewControl(addrA(), addrB(), ActionAck, []byte{1})
	d := c.Clone()
	d.Value[0] = 0
	if c.Value[0] != 1 {
		t.Fatal("clone aliases value")
	}
}

func TestSegmentCountAndRange(t *testing.T) {
	cases := []struct {
		n    int
		want int
	}{
		{0, 0}, {-5, 0}, {1, 1}, {FloatsPerPacket, 1}, {FloatsPerPacket + 1, 2},
		{10 * FloatsPerPacket, 10}, {10*FloatsPerPacket + 5, 11},
	}
	for _, c := range cases {
		if got := SegmentCount(c.n); got != c.want {
			t.Errorf("SegmentCount(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	lo, hi := SegmentRange(FloatsPerPacket+10, 1)
	if lo != FloatsPerPacket || hi != FloatsPerPacket+10 {
		t.Fatalf("tail range [%d,%d)", lo, hi)
	}
}

func TestSegmentAssembleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 100, FloatsPerPacket, 3*FloatsPerPacket + 17} {
		grad := make([]float32, n)
		for i := range grad {
			grad[i] = rng.Float32()*2 - 1
		}
		pkts := Segment(addrA(), addrB(), grad)
		if len(pkts) != SegmentCount(n) {
			t.Fatalf("n=%d: %d packets, want %d", n, len(pkts), SegmentCount(n))
		}
		// Deliver out of order.
		order := rng.Perm(len(pkts))
		asm := NewAssembler(n)
		for _, i := range order[:len(order)-1] {
			if err := asm.Add(pkts[i]); err != nil {
				t.Fatal(err)
			}
			if asm.Complete() {
				t.Fatal("complete before all segments arrived")
			}
		}
		if got := asm.Remaining(); got != 1 {
			t.Fatalf("remaining = %d, want 1", got)
		}
		miss := asm.Missing()
		if len(miss) != 1 || miss[0] != pkts[order[len(order)-1]].Seg {
			t.Fatalf("missing = %v", miss)
		}
		if err := asm.Add(pkts[order[len(order)-1]]); err != nil {
			t.Fatal(err)
		}
		if !asm.Complete() {
			t.Fatal("not complete after all segments")
		}
		out := asm.Vector()
		for i := range grad {
			if out[i] != grad[i] {
				t.Fatalf("n=%d: element %d = %v, want %v", n, i, out[i], grad[i])
			}
		}
	}
}

func TestAssemblerDuplicateIdempotent(t *testing.T) {
	grad := []float32{1, 2, 3}
	pkts := Segment(addrA(), addrB(), grad)
	asm := NewAssembler(len(grad))
	for i := 0; i < 3; i++ {
		if err := asm.Add(pkts[0]); err != nil {
			t.Fatal(err)
		}
	}
	if !asm.Complete() {
		t.Fatal("single-segment vector should be complete")
	}
}

func TestAssemblerRejectsBadPackets(t *testing.T) {
	asm := NewAssembler(10)
	if err := asm.Add(NewControl(addrA(), addrB(), ActionAck, nil)); err == nil {
		t.Fatal("accepted control packet")
	}
	if err := asm.Add(NewData(addrA(), addrB(), 5, []float32{1})); err == nil {
		t.Fatal("accepted out-of-range segment")
	}
	if err := asm.Add(NewData(addrA(), addrB(), 0, []float32{1, 2})); err == nil {
		t.Fatal("accepted wrong-length segment")
	}
}

func TestAssemblerReset(t *testing.T) {
	grad := make([]float32, FloatsPerPacket*2)
	pkts := Segment(addrA(), addrB(), grad)
	asm := NewAssembler(len(grad))
	for _, p := range pkts {
		_ = asm.Add(p)
	}
	asm.Reset()
	if asm.Complete() || asm.Remaining() != 2 {
		t.Fatalf("after reset: complete=%v remaining=%d", asm.Complete(), asm.Remaining())
	}
}

// Property: segmentation then assembly is the identity for any vector.
func TestSegmentAssembleQuick(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) > 4*FloatsPerPacket {
			raw = raw[:4*FloatsPerPacket]
		}
		grad := make([]float32, len(raw))
		for i, b := range raw {
			grad[i] = math.Float32frombits(b)
		}
		pkts := Segment(addrA(), addrB(), grad)
		asm := NewAssembler(len(grad))
		for _, p := range pkts {
			if err := asm.Add(p); err != nil {
				return false
			}
		}
		if len(grad) > 0 && !asm.Complete() {
			return false
		}
		out := asm.Vector()
		for i := range grad {
			if math.Float32bits(out[i]) != math.Float32bits(grad[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
