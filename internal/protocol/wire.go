package protocol

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Wire encoding. Marshal produces a complete Ethernet/IPv4/UDP frame;
// Unmarshal parses one. MarshalPayload/UnmarshalPayload handle only the
// UDP payload (kind-tagged), which is what the real-UDP transport puts
// inside genuine OS datagrams where the kernel owns the outer headers.

const (
	etherTypeIPv4 = 0x0800
	ipProtoUDP    = 17
	ipVersionIHL  = 0x45 // IPv4, 5-word header
	defaultTTL    = 64
)

// Marshal encodes the packet as a full Ethernet frame. MAC addresses are
// synthesized from the IP addresses (locally administered).
func Marshal(p *Packet) ([]byte, error) {
	payload, err := MarshalPayload(p)
	if err != nil {
		return nil, err
	}
	udpLen := UDPHeaderLen + len(payload)
	ipLen := IPv4HeaderLen + udpLen
	if ipLen > IPMTU {
		return nil, fmt.Errorf("protocol: packet IP length %d exceeds MTU %d", ipLen, IPMTU)
	}
	buf := make([]byte, EthernetHeaderLen+ipLen)

	// Ethernet.
	copy(buf[0:6], macFor(p.Dst))
	copy(buf[6:12], macFor(p.Src))
	binary.BigEndian.PutUint16(buf[12:14], etherTypeIPv4)

	// IPv4.
	ip := buf[EthernetHeaderLen:]
	ip[0] = ipVersionIHL
	ip[1] = p.ToS
	binary.BigEndian.PutUint16(ip[2:4], uint16(ipLen))
	// The Identification field carries the job ID (multi-tenant
	// extension; zero for single-tenant traffic). Flags and fragment
	// offset stay zero.
	binary.BigEndian.PutUint16(ip[4:6], uint16(p.Job))
	ip[8] = defaultTTL
	ip[9] = ipProtoUDP
	copy(ip[12:16], p.Src.IP[:])
	copy(ip[16:20], p.Dst.IP[:])
	binary.BigEndian.PutUint16(ip[10:12], ipChecksum(ip[:IPv4HeaderLen]))

	// UDP.
	udp := ip[IPv4HeaderLen:]
	binary.BigEndian.PutUint16(udp[0:2], p.Src.Port)
	binary.BigEndian.PutUint16(udp[2:4], p.Dst.Port)
	binary.BigEndian.PutUint16(udp[4:6], uint16(udpLen))
	// UDP checksum optional over IPv4; left zero as the paper's FPGA does.

	copy(udp[UDPHeaderLen:], payload)
	return buf, nil
}

// Unmarshal parses a full Ethernet frame produced by Marshal (or any
// frame with the same layout). Frames that are not iSwitch traffic are
// returned with ToS preserved so callers can forward them unmodified.
func Unmarshal(frame []byte) (*Packet, error) {
	if len(frame) < EthernetHeaderLen+IPv4HeaderLen+UDPHeaderLen {
		return nil, fmt.Errorf("protocol: frame too short (%d bytes)", len(frame))
	}
	if et := binary.BigEndian.Uint16(frame[12:14]); et != etherTypeIPv4 {
		return nil, fmt.Errorf("protocol: unsupported EtherType %#04x", et)
	}
	ip := frame[EthernetHeaderLen:]
	if ip[0] != ipVersionIHL {
		return nil, fmt.Errorf("protocol: unsupported IP version/IHL %#02x", ip[0])
	}
	if ip[9] != ipProtoUDP {
		return nil, fmt.Errorf("protocol: unsupported IP protocol %d", ip[9])
	}
	if got := ipChecksum(ip[:IPv4HeaderLen]); got != 0 {
		return nil, fmt.Errorf("protocol: bad IPv4 checksum")
	}
	ipLen := int(binary.BigEndian.Uint16(ip[2:4]))
	if ipLen < IPv4HeaderLen+UDPHeaderLen || EthernetHeaderLen+ipLen > len(frame) {
		return nil, fmt.Errorf("protocol: bad IP total length %d", ipLen)
	}
	p := &Packet{ToS: ip[1], Job: JobID(binary.BigEndian.Uint16(ip[4:6]))}
	copy(p.Src.IP[:], ip[12:16])
	copy(p.Dst.IP[:], ip[16:20])

	udp := ip[IPv4HeaderLen:ipLen]
	p.Src.Port = binary.BigEndian.Uint16(udp[0:2])
	p.Dst.Port = binary.BigEndian.Uint16(udp[2:4])
	udpLen := int(binary.BigEndian.Uint16(udp[4:6]))
	if udpLen < UDPHeaderLen || udpLen > len(udp) {
		return nil, fmt.Errorf("protocol: bad UDP length %d", udpLen)
	}
	if err := unmarshalPayloadInto(p, udp[UDPHeaderLen:udpLen]); err != nil {
		return nil, err
	}
	return p, nil
}

// MarshalPayload encodes only the UDP payload: for control packets a
// 1-byte Action plus Value, for data packets the 8-byte Seg plus raw
// float32 data. Regular packets have an empty payload.
func MarshalPayload(p *Packet) ([]byte, error) {
	return AppendPayload(nil, p)
}

// AppendPayload appends the UDP payload encoding of p to dst and returns
// the extended slice, letting callers on the transport hot path reuse
// one scratch buffer instead of allocating per packet.
func AppendPayload(dst []byte, p *Packet) ([]byte, error) {
	switch {
	case p.IsControl():
		dst = append(dst, byte(p.Action))
		return append(dst, p.Value...), nil
	case p.IsData():
		if p.Enc != CompNone {
			// Compressed encodings are simulator-only: the DES models
			// their byte counts via WireLen but never serializes them,
			// and the real-UDP transport negotiates CompNone.
			return nil, fmt.Errorf("protocol: cannot marshal %v-encoded data packet", p.Enc)
		}
		if len(p.Data) > FloatsPerPacket {
			return nil, fmt.Errorf("protocol: %d floats exceed packet capacity %d",
				len(p.Data), FloatsPerPacket)
		}
		dst = binary.LittleEndian.AppendUint64(dst, p.Seg)
		for _, f := range p.Data {
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(f))
		}
		return dst, nil
	default:
		return dst, nil
	}
}

// unmarshalPayloadInto fills the ToS-selected payload fields of p.
func unmarshalPayloadInto(p *Packet, payload []byte) error {
	switch {
	case p.IsControl():
		if len(payload) < 1 {
			return fmt.Errorf("protocol: control packet missing action byte")
		}
		p.Action = Action(payload[0])
		if len(payload) > 1 {
			p.Value = append([]byte(nil), payload[1:]...)
		}
		return nil
	case p.IsData():
		if len(payload) < SegFieldLen {
			return fmt.Errorf("protocol: data packet shorter than Seg field")
		}
		if (len(payload)-SegFieldLen)%4 != 0 {
			return fmt.Errorf("protocol: data payload length %d not float32-aligned", len(payload))
		}
		p.Seg = binary.LittleEndian.Uint64(payload[0:8])
		n := (len(payload) - SegFieldLen) / 4
		p.Data = make([]float32, n)
		for i := range p.Data {
			p.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[8+4*i:]))
		}
		return nil
	default:
		return nil
	}
}

// UnmarshalPayload parses a UDP payload given the out-of-band ToS tag
// and addressing (how the real-UDP transport reconstructs packets).
func UnmarshalPayload(src, dst Addr, tos uint8, payload []byte) (*Packet, error) {
	p := &Packet{Src: src, Dst: dst, ToS: tos}
	if err := unmarshalPayloadInto(p, payload); err != nil {
		return nil, err
	}
	return p, nil
}

// macFor synthesizes a deterministic locally-administered MAC from an
// address, so frames are self-consistent without an ARP substrate.
func macFor(a Addr) []byte {
	return []byte{0x02, 0x00, a.IP[0], a.IP[1], a.IP[2], a.IP[3]}
}

// ipChecksum computes the RFC 791 header checksum. Computing it over a
// header whose checksum field is already filled yields zero when valid.
func ipChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(hdr[i : i+2]))
	}
	if len(hdr)%2 == 1 {
		sum += uint32(hdr[len(hdr)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}
