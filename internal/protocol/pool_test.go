package protocol

import (
	"testing"
)

func TestPooledCloneIsDeepAndReleasable(t *testing.T) {
	orig := NewData(AddrFrom(10, 0, 0, 1, 9999), AddrFrom(10, 0, 0, 2, 9999), 7,
		[]float32{1, 2, 3})
	orig.Job = 3
	cl := orig.PooledClone()
	if cl.Src != orig.Src || cl.Dst != orig.Dst || cl.Seg != 7 || cl.Job != 3 || !cl.IsData() {
		t.Fatalf("clone header mismatch: %+v", cl)
	}
	cl.Data[0] = 99
	if orig.Data[0] != 1 {
		t.Fatal("pooled clone aliases the original's payload")
	}
	cl.Release()
	// Release must be final: the frame may be reused immediately.
	reused := GetPacket()
	reused.SetDataCopy([]float32{5, 5})
	if orig.Data[0] != 1 || orig.Data[1] != 2 {
		t.Fatal("reused frame corrupted the original")
	}
	reused.Release()
}

func TestReleaseOnUnpooledPacketIsNoop(t *testing.T) {
	p := NewData(Addr{}, Addr{}, 1, []float32{4})
	p.Release() // must not panic or enter the pool
	if p.Data[0] != 4 {
		t.Fatal("Release mutated an unpooled packet")
	}
	var nilPkt *Packet
	nilPkt.Release() // nil-safe
}

func TestCloneOfPooledPacketIsIndependent(t *testing.T) {
	p := NewPooledData(Addr{}, Addr{}, 2, []float32{1, 2})
	cl := p.Clone()
	p.Release()
	// The frame may be recycled now; the unpooled clone must survive.
	q := GetPacket()
	q.SetDataCopy([]float32{9, 9})
	if cl.Data[0] != 1 || cl.Data[1] != 2 {
		t.Fatalf("Clone of pooled packet aliases pool memory: %v", cl.Data)
	}
	cl.Release() // no-op: Clone yields an unpooled packet
	q.Release()
}

func TestSetValueCopyOwnsPayload(t *testing.T) {
	src := []byte{1, 2, 3}
	p := GetPacket()
	p.SetValueCopy(src)
	src[0] = 9
	if p.Value[0] != 1 {
		t.Fatal("SetValueCopy aliased the source slice")
	}
	p.Release()
}

func TestPooledRoundTripDoesNotAllocateAtSteadyState(t *testing.T) {
	payload := make([]float32, FloatsPerPacket)
	tmpl := NewData(Addr{}, Addr{}, 1, payload)
	// Warm the pool so backing arrays exist.
	for i := 0; i < 8; i++ {
		tmpl.PooledClone().Release()
	}
	allocs := testing.AllocsPerRun(200, func() {
		cl := tmpl.PooledClone()
		cl.Release()
	})
	if allocs > 0.1 {
		t.Fatalf("PooledClone/Release allocates %.2f allocs/op at steady state, want ~0", allocs)
	}
}
