package protocol

// Round tagging for synchronous loss recovery. When a worker arms
// recovery it stamps every data packet's Seg field with the current
// aggregation round in the high 16 bits, leaving 48 bits of segment
// index. Tagging keeps switch state of adjacent rounds disjoint so a
// retransmitted segment can never mix iterations, and it is what lets
// the switch's shadow slots validate that a cached aggregate answers
// the round the requester is actually stalled on. Rounds wrap mod 2^16;
// any stale switch partial from 65536 rounds ago would be a lost-cause
// leak, not a correctness hazard, because its contributors' dedup
// entries still block completion.

const (
	// RoundShift is the bit position of the round tag within Seg.
	RoundShift = 48
	// SegIndexMask extracts the 48-bit spatial segment index.
	SegIndexMask = (uint64(1) << RoundShift) - 1
	// RoundTagMod is the modulus round numbers wrap at.
	RoundTagMod = 1 << 16
)

// RoundTag returns the shifted tag bits for an aggregation round
// (round 0 tags as 0, preserving plain segment numbering).
func RoundTag(round uint64) uint64 {
	return (round % RoundTagMod) << RoundShift
}

// TagSeg combines a segment index with a round's tag bits.
func TagSeg(round, seg uint64) uint64 { return RoundTag(round) | (seg & SegIndexMask) }

// SegIndex strips the round tag off a Seg field.
func SegIndex(tagged uint64) uint64 { return tagged & SegIndexMask }

// SegRound extracts a Seg field's round tag as a raw 16-bit value.
func SegRound(tagged uint64) uint64 { return tagged >> RoundShift }
