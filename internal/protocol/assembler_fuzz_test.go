package protocol

import (
	"math/rand"
	"testing"
)

// FuzzAssembler drives an Assembler through an arbitrary packet program
// — valid segments, duplicates, out-of-range segments, wrong-length
// payloads, control packets, resets — against a reference model. The
// assembler must never panic, must reject every malformed packet
// without corrupting state, and must keep Vector/Remaining/Complete/
// Missing consistent with the reference at every step.
func FuzzAssembler(f *testing.F) {
	f.Add(int64(1), uint16(100), []byte{0, 1, 2, 3, 4, 5})
	f.Add(int64(7), uint16(366), []byte{0, 0, 0})
	f.Add(int64(42), uint16(1000), []byte{2, 3, 4, 0, 5, 1, 0})
	f.Add(int64(-9), uint16(1), []byte{5, 0, 5, 0})
	f.Fuzz(func(t *testing.T, seed int64, n16 uint16, program []byte) {
		n := int(n16)%1500 + 1
		segs := SegmentCount(n)
		rng := rand.New(rand.NewSource(seed))
		src := AddrFrom(10, 0, 0, 2, 9999)
		dst := AddrFrom(10, 0, 0, 99, 9998)

		a := NewAssembler(n)
		ref := make([]float32, n)   // expected vector contents
		got := make([]bool, segs)   // expected arrival state
		valid := make([]bool, segs) // segments whose ref contents are meaningful

		if len(program) > 512 {
			program = program[:512]
		}
		for pc, op := range program {
			switch op % 6 {
			case 0, 1: // valid data packet (fresh or duplicate; dups overwrite)
				s := uint64(rng.Intn(segs))
				lo, hi := SegmentRange(n, s)
				data := make([]float32, hi-lo)
				for i := range data {
					data[i] = float32(rng.Intn(1000)) - 500
				}
				if err := a.Add(NewData(src, dst, s, data)); err != nil {
					t.Fatalf("op %d: valid segment %d rejected: %v", pc, s, err)
				}
				copy(ref[lo:hi], data)
				got[s] = true
				valid[s] = true
			case 2: // out-of-range segment index
				s := uint64(segs) + uint64(rng.Intn(1<<20))
				if err := a.Add(NewData(src, dst, s, make([]float32, 1))); err == nil {
					t.Fatalf("op %d: out-of-range segment %d accepted", pc, s)
				}
			case 3: // wrong payload length for an in-range segment
				s := uint64(rng.Intn(segs))
				lo, hi := SegmentRange(n, s)
				want := hi - lo
				wrong := want + 1
				if wrong > FloatsPerPacket {
					wrong = want - 1
				}
				if wrong < 0 {
					wrong = 0
				}
				if wrong == want {
					continue // 1-element final segment at capacity: no wrong length to build
				}
				if err := a.Add(NewData(src, dst, s, make([]float32, wrong))); err == nil {
					t.Fatalf("op %d: segment %d with %d floats (want %d) accepted", pc, s, wrong, want)
				}
			case 4: // control packet on the data path
				if err := a.Add(NewControl(src, dst, ActionHelp, nil)); err == nil {
					t.Fatalf("op %d: control packet accepted as data", pc)
				}
			case 5: // reset for the next round (vector contents persist)
				a.Reset()
				for s := range got {
					got[s] = false
				}
			}

			// Invariants against the reference model, after every op.
			rem := 0
			for _, g := range got {
				if !g {
					rem++
				}
			}
			if a.Remaining() != rem {
				t.Fatalf("op %d: Remaining() = %d, reference %d", pc, a.Remaining(), rem)
			}
			if a.Complete() != (rem == 0) {
				t.Fatalf("op %d: Complete() = %v with %d missing", pc, a.Complete(), rem)
			}
			missing := a.Missing()
			mi := 0
			for s, g := range got {
				if !g {
					if mi >= len(missing) || missing[mi] != uint64(s) {
						t.Fatalf("op %d: Missing() = %v, segment %d absent", pc, missing, s)
					}
					mi++
				}
			}
			if mi != len(missing) {
				t.Fatalf("op %d: Missing() lists %d extras", pc, len(missing)-mi)
			}
			vec := a.Vector()
			if len(vec) != n {
				t.Fatalf("op %d: Vector() length %d, want %d", pc, len(vec), n)
			}
			for s := 0; s < segs; s++ {
				if !valid[s] {
					continue // never written: contents unspecified (zero)
				}
				lo, hi := SegmentRange(n, uint64(s))
				for i := lo; i < hi; i++ {
					if vec[i] != ref[i] {
						t.Fatalf("op %d: Vector()[%d] = %v, reference %v (segment %d corrupted)",
							pc, i, vec[i], ref[i], s)
					}
				}
			}
		}
	})
}
