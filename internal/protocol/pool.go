package protocol

import "sync"

// Packet pooling. Switch fan-out is the dominant packet producer in a
// large simulation: broadcasting one aggregated segment to W workers
// materializes W copies, and on a 1024-worker fat-tree that is a
// gigabyte-scale allocation churn per training step. Pooled packets
// make those copies flyweight: the consumer that takes delivery calls
// Release when it has extracted what it needs, and the frame (with its
// payload backing arrays) is reused for a later copy.
//
// Ownership rules:
//
//   - A pooled packet is owned by exactly one consumer at a time; the
//     owner either retains it forever or calls Release exactly once,
//     after which the packet must not be touched.
//   - Release on a non-pooled packet is a no-op, so delivery paths may
//     release unconditionally — forgetting a Release leaks nothing
//     (the GC still collects), and releasing a packet that never came
//     from the pool is harmless. Pooling is an optimization, never a
//     correctness requirement.
//   - Shallow copies (cp := *pkt) alias the pooled payload: the copy
//     must not outlive the original's Release, and must never be
//     released itself.

var packetPool = sync.Pool{New: func() any { return new(Packet) }}

// GetPacket returns an empty pooled packet. The caller owns it until
// Release.
func GetPacket() *Packet {
	p := packetPool.Get().(*Packet)
	p.pooled = true
	return p
}

// Release returns a pooled packet to the pool, keeping its payload
// backing arrays for reuse. No-op for packets that did not come from
// GetPacket, so consumers may call it unconditionally on delivery.
func (p *Packet) Release() {
	if p == nil || !p.pooled {
		return
	}
	dataBuf, valueBuf, qBuf, idxBuf := p.dataBuf, p.valueBuf, p.qBuf, p.idxBuf
	*p = Packet{dataBuf: dataBuf, valueBuf: valueBuf, qBuf: qBuf, idxBuf: idxBuf}
	packetPool.Put(p)
}

// SetDataCopy points p.Data at an owned copy of data, reusing p's
// backing array when it is large enough.
func (p *Packet) SetDataCopy(data []float32) {
	if cap(p.dataBuf) < len(data) {
		p.dataBuf = make([]float32, len(data))
	}
	p.Data = p.dataBuf[:len(data)]
	copy(p.Data, data)
}

// SetValueCopy points p.Value at an owned copy of value, reusing p's
// backing array when it is large enough.
func (p *Packet) SetValueCopy(value []byte) {
	if cap(p.valueBuf) < len(value) {
		p.valueBuf = make([]byte, len(value))
	}
	p.Value = p.valueBuf[:len(value)]
	copy(p.Value, value)
}

// SetQDataCopy points p.QData at an owned copy of q, reusing p's
// backing array when it is large enough.
func (p *Packet) SetQDataCopy(q []int32) {
	if cap(p.qBuf) < len(q) {
		p.qBuf = make([]int32, len(q))
	}
	p.QData = p.qBuf[:len(q)]
	copy(p.QData, q)
}

// SetIdxCopy points p.Idx at an owned copy of idx, reusing p's backing
// array when it is large enough.
func (p *Packet) SetIdxCopy(idx []uint16) {
	if cap(p.idxBuf) < len(idx) {
		p.idxBuf = make([]uint16, len(idx))
	}
	p.Idx = p.idxBuf[:len(idx)]
	copy(p.Idx, idx)
}

// PooledClone returns a deep copy of p backed by the pool — same
// semantics as Clone, but the copy is flyweight: whoever takes delivery
// should Release it. The clone never aliases p's payload.
func (p *Packet) PooledClone() *Packet {
	q := GetPacket()
	q.Src, q.Dst, q.ToS, q.Job = p.Src, p.Dst, p.ToS, p.Job
	q.Action, q.Seg = p.Action, p.Seg
	q.Enc, q.Shift = p.Enc, p.Shift
	if p.Value != nil {
		q.SetValueCopy(p.Value)
	}
	if p.Data != nil {
		q.SetDataCopy(p.Data)
	}
	if p.QData != nil {
		q.SetQDataCopy(p.QData)
	}
	if p.Idx != nil {
		q.SetIdxCopy(p.Idx)
	}
	return q
}

// NewPooledData builds a pooled data packet whose payload is an owned
// copy of data (copy-in semantics, unlike NewData which aliases).
func NewPooledData(src, dst Addr, seg uint64, data []float32) *Packet {
	if len(data) > FloatsPerPacket {
		panic("protocol: segment exceeds packet capacity")
	}
	p := GetPacket()
	p.Src, p.Dst, p.ToS, p.Seg = src, dst, ToSData, seg
	p.SetDataCopy(data)
	return p
}
