package accel

import (
	"math"
	"testing"
)

// TestIngestSteadyStateZeroAlloc pins the package's performance
// contract: once a segment's buffer exists, accumulating into it must
// not allocate.
func TestIngestSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is unreliable under -race")
	}
	a := New(Config{BusWidthBits: 256, ClockHz: 200e6, PipelineDepth: 8, Threshold: 1 << 30})
	data := make([]float32, 1024)
	for i := range data {
		data[i] = float32(i)
	}
	a.Ingest(7, data) // create the segment buffer
	if n := testing.AllocsPerRun(50, func() { a.Ingest(7, data) }); n != 0 {
		t.Fatalf("steady-state Ingest allocates %v allocs/op, want 0", n)
	}
}

// TestEmitRecycleCycleZeroAlloc covers the full aggregate→emit→Recycle
// loop: after one warm cycle, subsequent cycles must reuse the pooled
// segment record and buffer without allocating.
func TestEmitRecycleCycleZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is unreliable under -race")
	}
	cfg := DefaultConfig()
	cfg.Threshold = 4
	a := New(cfg)
	data := make([]float32, 366)
	cycle := func() {
		for w := 0; w < 4; w++ {
			if sum, done, _ := a.Ingest(0, data); done {
				a.Recycle(sum)
			}
		}
	}
	cycle() // warm the pool
	if n := testing.AllocsPerRun(50, cycle); n != 0 {
		t.Fatalf("emit/Recycle cycle allocates %v allocs/op, want 0", n)
	}
}

// TestRecycledBufferZeroed verifies a recycled buffer is indistinguishable
// from a fresh allocation: the next segment that reuses it starts from
// exact +0 bits, so sums stay bit-identical to the unpooled seed.
func TestRecycledBufferZeroed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Threshold = 1
	a := New(cfg)
	dirty := []float32{1.5, -2.25, float32(math.NaN()), float32(math.Inf(1))}
	sum, done, _ := a.Ingest(0, dirty)
	if !done {
		t.Fatal("expected emission at H=1")
	}
	a.Recycle(sum)

	// A -0 contribution exposes stale state: +0 + (-0) = +0, but
	// dirty + (-0) != +0 bit pattern.
	negZero := []float32{float32(math.Copysign(0, -1)), float32(math.Copysign(0, -1)),
		float32(math.Copysign(0, -1)), float32(math.Copysign(0, -1))}
	sum2, done, _ := a.Ingest(1, negZero)
	if !done {
		t.Fatal("expected emission at H=1")
	}
	for i, v := range sum2 {
		if math.Float32bits(v) != 0 {
			t.Fatalf("element %d = %v (bits %x), want exact +0 from a zeroed recycled buffer",
				i, v, math.Float32bits(v))
		}
	}
}

// TestRecycleKeepsLargerBuffer checks the pool prefers the larger of the
// recycled and banked buffers so capacity ratchets up, not down.
func TestRecycleKeepsLargerBuffer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Threshold = 1
	a := New(cfg)
	big := make([]float32, 2048)
	sum, done, _ := a.Ingest(0, big)
	if !done {
		t.Fatal("expected emission at H=1")
	}
	a.Recycle(sum)
	small := make([]float32, 8)
	sum2, _, _ := a.Ingest(1, small)
	if cap(sum2) < 2048 {
		t.Fatalf("recycled capacity %d, want the banked 2048-element buffer reused", cap(sum2))
	}
}
