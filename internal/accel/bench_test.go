package accel

import (
	"testing"

	"iswitch/internal/protocol"
)

// BenchmarkIngestFullPacket measures accumulating one full-MTU gradient
// packet (366 float32 lanes) — the accelerator's inner loop.
func BenchmarkIngestFullPacket(b *testing.B) {
	a := New(Config{BusWidthBits: 256, ClockHz: 200e6, PipelineDepth: 8, Threshold: 1 << 30})
	data := make([]float32, protocol.FloatsPerPacket)
	for i := range data {
		data[i] = float32(i)
	}
	b.SetBytes(int64(4 * len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Ingest(uint64(i%1024), data)
	}
}

// BenchmarkIngestEmitCycle measures a full aggregate-and-emit cycle at
// H=4 (four contributions then an emission).
func BenchmarkIngestEmitCycle(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Threshold = 4
	a := New(cfg)
	data := make([]float32, protocol.FloatsPerPacket)
	b.SetBytes(int64(4 * 4 * len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for w := 0; w < 4; w++ {
			a.Ingest(0, data)
		}
	}
}

// BenchmarkWholeVectorSum measures the deferred PS-style summation for
// comparison with on-the-fly (Figure 8's software side).
func BenchmarkWholeVectorSum(b *testing.B) {
	const n, workers = 100_000, 4
	vecs := make([][]float32, workers)
	for i := range vecs {
		vecs[i] = make([]float32, n)
	}
	b.SetBytes(int64(4 * n * workers))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wv := NewWholeVector(n, workers)
		for _, v := range vecs {
			_ = wv.Add(v)
		}
		if _, err := wv.Sum(); err != nil {
			b.Fatal(err)
		}
	}
}
