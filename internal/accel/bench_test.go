package accel

import (
	"testing"

	"iswitch/internal/protocol"
)

// BenchmarkIngestFullPacket measures accumulating one full-MTU gradient
// packet (366 float32 lanes) — the accelerator's inner loop.
func BenchmarkIngestFullPacket(b *testing.B) {
	a := New(Config{BusWidthBits: 256, ClockHz: 200e6, PipelineDepth: 8, Threshold: 1 << 30})
	data := make([]float32, protocol.FloatsPerPacket)
	for i := range data {
		data[i] = float32(i)
	}
	b.SetBytes(int64(4 * len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Ingest(uint64(i%1024), data)
	}
}

// BenchmarkAccelIngest1024 measures steady-state accumulation of a
// 1024-float payload across a warm working set of segments. All segment
// buffers are pre-created before the timer starts, so this pins the
// zero-alloc contract on the pure accumulate path.
func BenchmarkAccelIngest1024(b *testing.B) {
	a := New(Config{BusWidthBits: 256, ClockHz: 200e6, PipelineDepth: 8, Threshold: 1 << 30})
	data := make([]float32, 1024)
	for i := range data {
		data[i] = float32(i) * 0.25
	}
	const segs = 64
	for s := uint64(0); s < segs; s++ {
		a.Ingest(s, data)
	}
	b.SetBytes(int64(4 * len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Ingest(uint64(i%segs), data)
	}
}

// BenchmarkIngestEmitCycle measures a full aggregate-and-emit cycle at
// H=4 (four contributions then an emission).
func BenchmarkIngestEmitCycle(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Threshold = 4
	a := New(cfg)
	data := make([]float32, protocol.FloatsPerPacket)
	b.SetBytes(int64(4 * 4 * len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for w := 0; w < 4; w++ {
			a.Ingest(0, data)
		}
	}
}

// BenchmarkIngestEmitCycleRecycle is the emit cycle with the consumer
// returning each aggregate via Recycle — the switch datapath's steady
// state, which must be allocation-free.
func BenchmarkIngestEmitCycleRecycle(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Threshold = 4
	a := New(cfg)
	data := make([]float32, protocol.FloatsPerPacket)
	// Warm one full cycle so the pool holds the segment record + buffer.
	for w := 0; w < 4; w++ {
		if sum, done, _ := a.Ingest(0, data); done {
			a.Recycle(sum)
		}
	}
	b.SetBytes(int64(4 * 4 * len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for w := 0; w < 4; w++ {
			if sum, done, _ := a.Ingest(0, data); done {
				a.Recycle(sum)
			}
		}
	}
}

// BenchmarkWholeVectorSum measures the deferred PS-style summation for
// comparison with on-the-fly (Figure 8's software side).
func BenchmarkWholeVectorSum(b *testing.B) {
	const n, workers = 100_000, 4
	vecs := make([][]float32, workers)
	for i := range vecs {
		vecs[i] = make([]float32, n)
	}
	b.SetBytes(int64(4 * n * workers))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wv := NewWholeVector(n, workers)
		for _, v := range vecs {
			_ = wv.Add(v)
		}
		if _, err := wv.Sum(); err != nil {
			b.Fatal(err)
		}
	}
}
