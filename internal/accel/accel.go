// Package accel models the iSwitch in-switch aggregation accelerator
// (paper §3.3, Figure 7).
//
// The hardware ingests tagged data packets as 256-bit bus bursts: a
// separator splits header bursts from payload bursts, a Seg decoder
// extracts the segment index, a per-segment counter tracks how many
// worker contributions have been summed, and eight parallel 32-bit
// floating-point adders accumulate each payload burst into a BRAM
// buffer addressed by (Seg, burst offset). When a segment's counter
// reaches the aggregation threshold H, the output module emits one data
// packet carrying the fully aggregated segment, zeroes the buffer, and
// resets the counter.
//
// This package reproduces both the function (the exact float32 sums, in
// packet-arrival order, as a hardware adder pipeline would produce) and
// the timing (cycles consumed per packet at the published 200 MHz clock
// and 256-bit bus width).
//
// Performance contract: Ingest is the simulation's innermost loop, so
// its steady-state path is allocation-free — payload bursts are summed
// by the vectorized tensor kernels, and segment buffers come from a
// sync.Pool-backed free list that emitted aggregates can be returned to
// via Recycle. bench_test.go enforces 0 allocs/op on this path.
package accel

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"iswitch/internal/tensor"
	tensorkernels "iswitch/internal/tensor/kernels"
)

// Config describes the accelerator datapath. The defaults mirror the
// paper's NetFPGA-SUME implementation.
type Config struct {
	// BusWidthBits is the internal AXI4-Stream bus width; one burst of
	// this many bits is processed per clock cycle.
	BusWidthBits int
	// ClockHz is the accelerator clock frequency.
	ClockHz float64
	// PipelineDepth is the fill latency of the separator → decoder →
	// adder → buffer pipeline, in cycles, charged once per packet.
	PipelineDepth int
	// Threshold is the initial aggregation threshold H: how many
	// contributions a segment needs before it is emitted. The control
	// plane overwrites it via SetH; by default H equals the number of
	// workers (child nodes).
	Threshold uint32
}

// DefaultConfig returns the paper's hardware parameters: 256-bit bus,
// 200 MHz clock, eight float32 adders (256/32).
func DefaultConfig() Config {
	return Config{BusWidthBits: 256, ClockHz: 200e6, PipelineDepth: 8, Threshold: 1}
}

// AddersPerCycle returns how many float32 lanes one burst carries.
func (c Config) AddersPerCycle() int { return c.BusWidthBits / 32 }

// segState is one segment's accumulation buffer and counter. seen is
// the optional contributor bitmap (hardware analog: one bit per member
// port) that makes retransmissions idempotent. A segment accumulates in
// exactly one of buf (float32 adders: raw, fp16, and sparse traffic) or
// qbuf (the saturating int32 adders of the block-scaled quantized
// path) — the job's compression scheme is fixed at Join, so the two
// never mix within a job.
type segState struct {
	buf   []float32
	qbuf  []int32
	count uint32
	seen  map[string]struct{}
}

// Accelerator is the functional + timing model of the in-switch
// aggregation unit. It is single-threaded by construction: the embedding
// switch feeds it one packet at a time, exactly as the input arbiter
// serializes bursts in hardware.
type Accelerator struct {
	cfg   Config
	h     uint32
	segs  map[uint64]*segState
	dedup bool

	// pool recycles segState records (and their payload buffers) so
	// steady-state aggregation never allocates: emission hands the
	// buffer to the caller and banks the record; Recycle returns the
	// buffer for the next round.
	pool sync.Pool

	// qscratch re-widens narrowed child partials (q << shift) before
	// the saturating add, without mutating the caller's payload.
	qscratch []int32

	stats Stats
}

// Stats counts accelerator activity for experiments and tests.
type Stats struct {
	PacketsIn   uint64 // tagged data packets ingested
	PacketsOut  uint64 // fully aggregated segments emitted
	Flushes     uint64 // partial segments force-broadcast (FBcast)
	Resets      uint64 // Reset control actions applied
	BurstsAdded uint64 // payload bursts pushed through the adders
	Cycles      uint64 // total cycles consumed
	DupDropped  uint64 // duplicate contributions ignored (dedup mode)
}

// New creates an accelerator with the given configuration.
func New(cfg Config) *Accelerator {
	if cfg.BusWidthBits <= 0 || cfg.BusWidthBits%32 != 0 {
		panic(fmt.Sprintf("accel: bus width %d must be a positive multiple of 32", cfg.BusWidthBits))
	}
	if cfg.ClockHz <= 0 {
		panic("accel: clock frequency must be positive")
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = 1
	}
	return &Accelerator{cfg: cfg, h: cfg.Threshold, segs: make(map[uint64]*segState)}
}

// Threshold returns the current aggregation threshold H.
func (a *Accelerator) Threshold() uint32 { return a.h }

// SetThreshold applies a SetH control action.
func (a *Accelerator) SetThreshold(h uint32) error {
	if h == 0 {
		return fmt.Errorf("accel: aggregation threshold must be >= 1")
	}
	a.h = h
	return nil
}

// Stats returns a snapshot of activity counters.
func (a *Accelerator) Stats() Stats { return a.stats }

// Reset applies a Reset control action: clear all buffers and counters.
func (a *Accelerator) Reset() {
	for seg, st := range a.segs {
		delete(a.segs, seg)
		a.recycleState(st)
	}
	a.stats.Resets++
}

// newSegState takes a segment record from the pool (or allocates one)
// with a zeroed n-element buffer and a cleared contributor bitmap.
func (a *Accelerator) newSegState(n int) *segState {
	st, _ := a.pool.Get().(*segState)
	if st == nil {
		return &segState{buf: make([]float32, n)}
	}
	if cap(st.buf) >= n {
		st.buf = st.buf[:n]
		tensor.Zero(st.buf)
	} else {
		st.buf = make([]float32, n)
	}
	st.qbuf = st.qbuf[:0]
	st.count = 0
	clear(st.seen)
	return st
}

// newSegStateQ is newSegState for the integer datapath: a zeroed
// n-element int32 accumulator.
func (a *Accelerator) newSegStateQ(n int) *segState {
	st, _ := a.pool.Get().(*segState)
	if st == nil {
		return &segState{qbuf: make([]int32, n)}
	}
	if cap(st.qbuf) >= n {
		st.qbuf = st.qbuf[:n]
		clear(st.qbuf)
	} else {
		st.qbuf = make([]int32, n)
	}
	st.buf = st.buf[:0]
	st.count = 0
	clear(st.seen)
	return st
}

// recycleState banks a record, buffer included, for reuse.
func (a *Accelerator) recycleState(st *segState) {
	clear(st.seen)
	a.pool.Put(st)
}

// takeBuf detaches a completed segment's buffer for the caller and
// banks the bufferless record.
func (a *Accelerator) takeBuf(st *segState) []float32 {
	buf := st.buf
	st.buf = nil
	a.recycleState(st)
	return buf
}

// takeQBuf is takeBuf for the integer datapath.
func (a *Accelerator) takeQBuf(st *segState) []int32 {
	buf := st.qbuf
	st.qbuf = nil
	a.recycleState(st)
	return buf
}

// Recycle returns an aggregate buffer previously handed out by Ingest,
// IngestFrom, DrainSatisfied, or Flush to the segment-buffer pool. Call
// it once the aggregate has been consumed (e.g. serialized onto the
// wire) and do not use buf afterwards; the accelerator will reuse the
// storage for a future segment. Recycling is optional — buffers that
// are retained instead are simply replaced by fresh allocations.
func (a *Accelerator) Recycle(buf []float32) {
	if buf == nil {
		return
	}
	st, _ := a.pool.Get().(*segState)
	if st == nil {
		st = &segState{}
	}
	if cap(buf) >= cap(st.buf) {
		st.buf = buf[:0]
	}
	a.pool.Put(st)
}

// RecycleQ is Recycle for integer aggregate buffers handed out by
// IngestQFrom, DrainSatisfiedQ, or FlushQ.
func (a *Accelerator) RecycleQ(buf []int32) {
	if buf == nil {
		return
	}
	st, _ := a.pool.Get().(*segState)
	if st == nil {
		st = &segState{}
	}
	if cap(buf) >= cap(st.qbuf) {
		st.qbuf = buf[:0]
	}
	a.pool.Put(st)
}

// Pending reports how many segments hold partial (uncommitted) sums.
func (a *Accelerator) Pending() int { return len(a.segs) }

// SetDedup enables (or disables) the contributor bitmap: with dedup on,
// a second contribution from the same source to an in-progress segment
// is ignored, making loss-recovery retransmissions idempotent.
// Synchronous jobs enable it; asynchronous jobs keep it off, where a
// fast worker legitimately contributes multiple gradients per aggregate
// ("faster workers contribute more", paper §4.1).
func (a *Accelerator) SetDedup(on bool) { a.dedup = on }

// Dedup reports whether the contributor bitmap is active.
func (a *Accelerator) Dedup() bool { return a.dedup }

// Ingest accumulates one data packet's payload into the segment buffer
// identified by seg, in arrival order. If this contribution is the H-th
// for the segment, the fully aggregated payload is returned (done=true),
// the buffer is zeroed, and the counter reset — the "on-the-fly"
// behaviour of Figure 8b. latency is the datapath time consumed.
//
// Ownership of the returned slice transfers to the caller: the
// accelerator never touches it again unless it is handed back via
// Recycle, so it is safe to retain.
func (a *Accelerator) Ingest(seg uint64, data []float32) (sum []float32, done bool, latency time.Duration) {
	return a.IngestFrom(seg, "", data)
}

// IngestFrom is Ingest with a contributor identity for dedup mode. An
// empty contributor is never deduplicated.
func (a *Accelerator) IngestFrom(seg uint64, contributor string, data []float32) (sum []float32, done bool, latency time.Duration) {
	return a.IngestFromBytes(seg, contributor, data, 4*len(data))
}

// IngestFromBytes is IngestFrom with an explicit wire-payload byte
// count for the datapath latency charge — how the fp16 scheme's
// half-width payloads consume half the bus bursts while the in-memory
// representation stays float32.
func (a *Accelerator) IngestFromBytes(seg uint64, contributor string, data []float32, payloadBytes int) (sum []float32, done bool, latency time.Duration) {
	a.stats.PacketsIn++
	st := a.segs[seg]
	if st == nil {
		st = a.newSegState(len(data))
		a.segs[seg] = st
	}
	latency = a.packetLatencyBytes(payloadBytes)
	if a.isDup(st, contributor) {
		return nil, false, latency
	}
	if len(st.buf) != len(data) {
		// A malformed or inconsistent segment length; hardware would
		// flag this via the control plane. Grow to the larger size so
		// no data is silently dropped.
		if len(data) > len(st.buf) {
			grown := make([]float32, len(data))
			copy(grown, st.buf)
			st.buf = grown
		}
	}
	tensor.Add(st.buf[:len(data)], data)
	st.count++

	if st.count >= a.h {
		delete(a.segs, seg)
		a.stats.PacketsOut++
		return a.takeBuf(st), true, latency
	}
	return nil, false, latency
}

// isDup applies the dedup bitmap: true means this contribution was
// already counted and must be ignored.
func (a *Accelerator) isDup(st *segState, contributor string) bool {
	if !a.dedup || contributor == "" {
		return false
	}
	if st.seen == nil {
		st.seen = make(map[string]struct{})
	}
	if _, dup := st.seen[contributor]; dup {
		a.stats.DupDropped++
		return true
	}
	st.seen[contributor] = struct{}{}
	return false
}

// IngestQFrom accumulates one block-scaled quantized contribution on
// the integer datapath: the payload is re-widened by its narrowing
// shift (q << shift, exact) onto the segment's base grid and added with
// the saturating int32 adders — an exactly associative sum, so the
// aggregate is bit-identical under any arrival order. When the H-th
// contribution lands, the completed sum is narrowed back into the int16
// wire range and returned with its narrowing shift; ownership of the
// returned slice transfers to the caller (hand it back via RecycleQ).
func (a *Accelerator) IngestQFrom(seg uint64, contributor string, q []int32, shift uint8) (qsum []int32, outShift uint8, done bool, latency time.Duration) {
	a.stats.PacketsIn++
	st := a.segs[seg]
	if st == nil {
		st = a.newSegStateQ(len(q))
		a.segs[seg] = st
	}
	latency = a.packetLatencyBytes(1 + 2*len(q))
	if a.isDup(st, contributor) {
		return nil, 0, false, latency
	}
	if len(q) > len(st.qbuf) {
		grown := make([]int32, len(q))
		copy(grown, st.qbuf)
		st.qbuf = grown
	}
	addend := q
	if shift > 0 {
		// Re-widen into scratch so the caller's payload stays intact.
		if cap(a.qscratch) < len(q) {
			a.qscratch = make([]int32, len(q))
		}
		addend = a.qscratch[:len(q)]
		copy(addend, q)
		tensorkernels.ShlI32(addend, shift)
	}
	tensorkernels.AddSatInt32(st.qbuf[:len(q)], addend)
	st.count++

	if st.count >= a.h {
		delete(a.segs, seg)
		a.stats.PacketsOut++
		sum := a.takeQBuf(st)
		k := tensorkernels.NarrowShift(tensorkernels.MaxAbsI32(sum))
		tensorkernels.ShrI32(sum, k)
		return sum, k, true, latency
	}
	return nil, 0, false, latency
}

// IngestSparseFrom accumulates one top-k sparse contribution:
// scatter-add the (index, value) pairs into the segment's dense float32
// buffer, sized segLen. An empty pair list still counts as the worker's
// contribution — that is how a segment with no selected elements
// completes. The emitted aggregate is dense.
func (a *Accelerator) IngestSparseFrom(seg uint64, contributor string, idx []uint16, vals []float32, segLen int) (sum []float32, done bool, latency time.Duration) {
	a.stats.PacketsIn++
	st := a.segs[seg]
	if st == nil {
		st = a.newSegState(segLen)
		a.segs[seg] = st
	}
	latency = a.packetLatencyBytes(2 + 6*len(idx))
	if a.isDup(st, contributor) {
		return nil, false, latency
	}
	if segLen > len(st.buf) {
		grown := make([]float32, segLen)
		copy(grown, st.buf)
		st.buf = grown
	}
	tensorkernels.ScatterAdd(st.buf, idx, vals)
	st.count++

	if st.count >= a.h {
		delete(a.segs, seg)
		a.stats.PacketsOut++
		return a.takeBuf(st), true, latency
	}
	return nil, false, latency
}

// Flush applies an FBcast control action to one segment: return the
// partially aggregated payload (with how many contributions it holds)
// and clear the segment. ok is false if the segment holds nothing.
func (a *Accelerator) Flush(seg uint64) (sum []float32, count uint32, ok bool) {
	st := a.segs[seg]
	if st == nil {
		return nil, 0, false
	}
	delete(a.segs, seg)
	a.stats.Flushes++
	count = st.count
	return a.takeBuf(st), count, true
}

// FlushQ is Flush for the integer datapath: the partial sum is narrowed
// the same way a completed emission would be, so downstream decoding is
// uniform.
func (a *Accelerator) FlushQ(seg uint64) (q []int32, shift uint8, count uint32, ok bool) {
	st := a.segs[seg]
	if st == nil {
		return nil, 0, 0, false
	}
	delete(a.segs, seg)
	a.stats.Flushes++
	count = st.count
	sum := a.takeQBuf(st)
	k := tensorkernels.NarrowShift(tensorkernels.MaxAbsI32(sum))
	tensorkernels.ShrI32(sum, k)
	return sum, k, count, true
}

// DrainSatisfied emits every pending segment whose counter already
// meets the (possibly just lowered) threshold H — how the control plane
// unblocks rounds that were waiting on a worker that left the job.
// Results are ordered by ascending segment.
func (a *Accelerator) DrainSatisfied() (segs []uint64, sums [][]float32) {
	for _, s := range a.PendingSegs() {
		st := a.segs[s]
		if st.count >= a.h {
			segs = append(segs, s)
			delete(a.segs, s)
			sums = append(sums, a.takeBuf(st))
			a.stats.PacketsOut++
		}
	}
	return segs, sums
}

// DrainSatisfiedQ is DrainSatisfied for the integer datapath, narrowing
// each emitted sum and reporting its per-segment shift.
func (a *Accelerator) DrainSatisfiedQ() (segs []uint64, sums [][]int32, shifts []uint8) {
	for _, s := range a.PendingSegs() {
		st := a.segs[s]
		if st.count >= a.h {
			segs = append(segs, s)
			delete(a.segs, s)
			sum := a.takeQBuf(st)
			k := tensorkernels.NarrowShift(tensorkernels.MaxAbsI32(sum))
			tensorkernels.ShrI32(sum, k)
			sums = append(sums, sum)
			shifts = append(shifts, k)
			a.stats.PacketsOut++
		}
	}
	return segs, sums, shifts
}

// PendingSegs lists the segments holding partial sums, ascending.
func (a *Accelerator) PendingSegs() []uint64 {
	segs := make([]uint64, 0, len(a.segs))
	for s := range a.segs {
		segs = append(segs, s)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs
}

// FlushAll force-broadcasts every partial segment, in ascending segment
// order (via PendingSegs, the one place the sorted enumeration lives),
// returning the segment indices flushed. The discarded partial sums'
// buffers are recycled.
func (a *Accelerator) FlushAll() []uint64 {
	segs := a.PendingSegs()
	for _, s := range segs {
		st := a.segs[s]
		delete(a.segs, s)
		a.recycleState(st)
		a.stats.Flushes++
	}
	return segs
}

// packetLatencyBytes models the datapath cost of one packet: pipeline
// fill plus one cycle per bus burst of header and payload. Compressed
// payloads occupy fewer bursts, which is where the quantized schemes'
// datapath speedup comes from.
func (a *Accelerator) packetLatencyBytes(payloadBytes int) time.Duration {
	burstBytes := a.cfg.BusWidthBits / 8
	headerBytes := 14 + 20 + 8 + 8 // ETH + IP + UDP + Seg
	bursts := ceilDiv(headerBytes, burstBytes) + ceilDiv(payloadBytes, burstBytes)
	cycles := a.cfg.PipelineDepth + bursts
	a.stats.BurstsAdded += uint64(ceilDiv(payloadBytes, burstBytes))
	a.stats.Cycles += uint64(cycles)
	return a.CyclesToDuration(cycles)
}

// PacketLatency returns the datapath latency for a packet carrying
// nFloats float32 elements, without mutating state. Exported for the
// timing model and scalability experiments.
func (a *Accelerator) PacketLatency(nFloats int) time.Duration {
	burstBytes := a.cfg.BusWidthBits / 8
	bursts := ceilDiv(14+20+8+8, burstBytes) + ceilDiv(4*nFloats, burstBytes)
	return a.CyclesToDuration(a.cfg.PipelineDepth + bursts)
}

// CyclesToDuration converts accelerator cycles to wall time.
func (a *Accelerator) CyclesToDuration(cycles int) time.Duration {
	return time.Duration(float64(cycles) / a.cfg.ClockHz * float64(time.Second))
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// SeenBy reports the contributors recorded for a pending segment
// (dedup mode); nil when the segment has no state. Debugging aid.
func (a *Accelerator) SeenBy(seg uint64) []string {
	st := a.segs[seg]
	if st == nil {
		return nil
	}
	out := make([]string, 0, len(st.seen))
	for k := range st.seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// CountOf reports a pending segment's contribution count.
func (a *Accelerator) CountOf(seg uint64) uint32 {
	if st := a.segs[seg]; st != nil {
		return st.count
	}
	return 0
}
