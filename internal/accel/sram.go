package accel

import "fmt"

// Multi-tenant SRAM modeling. The accelerator's segment buffers and
// counters live in on-switch SRAM/BRAM — a hard, finite resource (the
// NetFPGA-SUME carries tens of megabits of BRAM; production
// programmable switches expose register arrays of similar scale).
// Running several training jobs through one switch means carving that
// memory into per-job aggregation contexts, exactly as SwitchML carves
// its slot pools. SRAMPool is that carve: jobs reserve their worst-case
// demand (every segment of the model pending at once) before the
// control plane admits them, and release it when they leave.

// DefaultSRAMBytes is the modeled per-switch aggregation SRAM: 16 MiB,
// enough for two DQN-sized jobs (6.44 MB of segment state each) plus a
// few small-model jobs — scarce enough that admission control is real.
const DefaultSRAMBytes = 16 << 20

// segOverheadBytes models the per-segment bookkeeping kept alongside
// the payload buffer: the 32-bit contribution counter plus a 32-bit
// valid/occupancy word.
const segOverheadBytes = 8

// ContextDemand returns the SRAM a job's aggregation context reserves:
// one full-model set of segment buffers plus per-segment counters.
// This is the worst case (every segment partially aggregated at once),
// which is what a hardware slot allocator must provision for.
func ContextDemand(modelFloats, perPacket int) int64 {
	if modelFloats <= 0 {
		return 0
	}
	if perPacket <= 0 {
		perPacket = 1
	}
	segs := int64((modelFloats + perPacket - 1) / perPacket)
	return int64(modelFloats)*4 + segs*segOverheadBytes
}

// Partition selects how the SRAM pool is carved between jobs.
type Partition int

const (
	// PartitionDemand grants each job exactly its declared demand,
	// first-come-first-served, until the pool is exhausted (SwitchML's
	// dynamic slot sharing).
	PartitionDemand Partition = iota
	// PartitionStatic splits the pool into MaxJobs equal slots; a job
	// takes one whole slot regardless of demand and is rejected if its
	// demand exceeds the slot size. Simpler hardware (fixed base
	// addresses), worse utilization.
	PartitionStatic
)

// String names the policy for CLI/docs output.
func (p Partition) String() string {
	if p == PartitionStatic {
		return "static"
	}
	return "demand"
}

// SRAMPool tracks per-job reservations against a finite SRAM budget.
// Job 0 — the single-tenant default context — is never metered, so a
// legacy fabric behaves exactly as before the pool existed.
type SRAMPool struct {
	total   int64
	policy  Partition
	maxJobs int
	allocs  map[uint16]int64

	// Rejections counts failed Reserve calls (admission pressure).
	Rejections uint64
}

// NewSRAMPool creates a pool of totalBytes (<= 0 selects
// DefaultSRAMBytes). maxJobs bounds the static split (<= 0 selects 8);
// it is ignored by the demand policy.
func NewSRAMPool(totalBytes int64, policy Partition, maxJobs int) *SRAMPool {
	if totalBytes <= 0 {
		totalBytes = DefaultSRAMBytes
	}
	if maxJobs <= 0 {
		maxJobs = 8
	}
	return &SRAMPool{total: totalBytes, policy: policy, maxJobs: maxJobs,
		allocs: make(map[uint16]int64)}
}

// Total returns the pool size in bytes.
func (p *SRAMPool) Total() int64 { return p.total }

// Policy returns the partitioning policy.
func (p *SRAMPool) Policy() Partition { return p.policy }

// Used returns the bytes currently reserved.
func (p *SRAMPool) Used() int64 {
	var u int64
	for _, b := range p.allocs {
		u += b
	}
	return u
}

// Free returns the unreserved bytes.
func (p *SRAMPool) Free() int64 { return p.total - p.Used() }

// Jobs returns the number of jobs holding reservations.
func (p *SRAMPool) Jobs() int { return len(p.allocs) }

// MaxJobs returns the slot count of the static partition (ignored by
// the demand policy).
func (p *SRAMPool) MaxJobs() int { return p.maxJobs }

// Capacity returns the largest demand any single job could ever
// reserve: the whole pool under the demand policy, one slot under
// static. A job above Capacity can never be admitted, even alone —
// admission control rejects it outright instead of queueing it forever.
func (p *SRAMPool) Capacity() int64 {
	if p.policy == PartitionStatic {
		return p.total / int64(p.maxJobs)
	}
	return p.total
}

// Reserved returns job's reservation (0 if none).
func (p *SRAMPool) Reserved(job uint16) int64 { return p.allocs[job] }

// Reserve claims SRAM for a job's aggregation context. Under the
// demand policy it claims exactly bytes; under the static policy it
// claims one total/maxJobs slot. Reserving twice for the same job is
// an error (contexts are admitted once).
func (p *SRAMPool) Reserve(job uint16, bytes int64) error {
	if _, dup := p.allocs[job]; dup {
		return fmt.Errorf("accel: job %d already holds an SRAM reservation", job)
	}
	if bytes < 0 {
		bytes = 0
	}
	claim := bytes
	switch p.policy {
	case PartitionStatic:
		slot := p.total / int64(p.maxJobs)
		if bytes > slot {
			p.Rejections++
			return fmt.Errorf("accel: job %d demands %d B, above the %d B static slot",
				job, bytes, slot)
		}
		if len(p.allocs) >= p.maxJobs {
			p.Rejections++
			return fmt.Errorf("accel: all %d static SRAM slots are taken", p.maxJobs)
		}
		claim = slot
	default: // PartitionDemand
		if bytes > p.Free() {
			p.Rejections++
			return fmt.Errorf("accel: job %d demands %d B, only %d B of SRAM free",
				job, bytes, p.Free())
		}
	}
	p.allocs[job] = claim
	return nil
}

// Release frees a job's reservation, returning the bytes given back.
func (p *SRAMPool) Release(job uint16) int64 {
	b, ok := p.allocs[job]
	if !ok {
		return 0
	}
	delete(p.allocs, job)
	return b
}
