package accel

import "iswitch/internal/protocol"

// ShadowStore is the shadow copy of the aggregation slots (SwitchML's
// slot-pair design, Sapio et al.): when the primary slot for a segment
// emits its aggregate and is reused by the next round, the emitted sum
// moves into the shadow slot for the same spatial segment index. A
// worker that lost the broadcast of round r can then be re-served from
// the shadow while round r+1 is already accumulating in the primary —
// the switch never has to ask anyone to retransmit data it has already
// summed.
//
// Slots are keyed by the 48-bit spatial segment index; each slot
// remembers the full round-tagged Seg value it holds, so a Get for a
// stale or future round misses instead of serving the wrong iteration.
// Untagged traffic (round tag 0: async mode, or recovery off) degrades
// to "most recent emission per segment", which is exactly the legacy
// emission-cache contract.
//
// One slot per model segment, reused every round with the buffer
// storage recycled in place — the SRAM cost is a second copy of the
// model, fixed for the lifetime of the job, matching a hardware
// double-buffered BRAM bank.
type ShadowStore struct {
	slots map[uint64]*shadowSlot
	stats ShadowStats
}

type shadowSlot struct {
	tagged uint64 // full Seg value (round tag | index) the slot answers
	buf    []float32
	qbuf   []int32
	shift  uint8
	quant  bool // slot holds a quantized (qbuf) aggregate, not buf
}

// ShadowStats counts shadow-slot activity.
type ShadowStats struct {
	Puts       uint64 // emissions recorded
	Overwrites uint64 // slot reused by a newer round
	Hits       uint64 // Gets served
	Misses     uint64 // Gets that found no slot or a different round
}

// NewShadowStore returns an empty store.
func NewShadowStore() *ShadowStore {
	return &ShadowStore{slots: make(map[uint64]*shadowSlot)}
}

// Put records an emitted aggregate under its (possibly round-tagged)
// Seg value, copying sum into the slot's reused storage.
func (s *ShadowStore) Put(taggedSeg uint64, sum []float32) {
	idx := protocol.SegIndex(taggedSeg)
	sl := s.slots[idx]
	if sl == nil {
		sl = &shadowSlot{}
		s.slots[idx] = sl
	} else if sl.tagged != taggedSeg {
		s.stats.Overwrites++
	}
	sl.tagged = taggedSeg
	sl.buf = append(sl.buf[:0], sum...)
	sl.quant = false
	s.stats.Puts++
}

// PutQ records an emitted quantized aggregate (with its narrowing
// shift) the same way Put records a float one. A job emits under exactly
// one representation, so a slot flips wholesale when a scheme's traffic
// lands in it.
func (s *ShadowStore) PutQ(taggedSeg uint64, q []int32, shift uint8) {
	idx := protocol.SegIndex(taggedSeg)
	sl := s.slots[idx]
	if sl == nil {
		sl = &shadowSlot{}
		s.slots[idx] = sl
	} else if sl.tagged != taggedSeg {
		s.stats.Overwrites++
	}
	sl.tagged = taggedSeg
	sl.qbuf = append(sl.qbuf[:0], q...)
	sl.shift = shift
	sl.quant = true
	s.stats.Puts++
}

// Get returns the shadow copy for an exact round-tagged Seg value. A
// slot holding a different round's aggregate misses: serving round r+1's
// sum to a worker stalled on round r would corrupt its weights.
func (s *ShadowStore) Get(taggedSeg uint64) ([]float32, bool) {
	sl := s.slots[protocol.SegIndex(taggedSeg)]
	if sl == nil || sl.tagged != taggedSeg || sl.quant {
		s.stats.Misses++
		return nil, false
	}
	s.stats.Hits++
	return sl.buf, true
}

// GetQ is Get for quantized slots; a slot holding a float aggregate
// misses (the representations never cross-serve).
func (s *ShadowStore) GetQ(taggedSeg uint64) (q []int32, shift uint8, ok bool) {
	sl := s.slots[protocol.SegIndex(taggedSeg)]
	if sl == nil || sl.tagged != taggedSeg || !sl.quant {
		s.stats.Misses++
		return nil, 0, false
	}
	s.stats.Hits++
	return sl.qbuf, sl.shift, true
}

// Len reports how many segments currently hold a shadow copy.
func (s *ShadowStore) Len() int { return len(s.slots) }

// Stats returns a snapshot of the activity counters.
func (s *ShadowStore) Stats() ShadowStats { return s.stats }

// Reset drops every shadow copy (job reset), keeping slot storage.
func (s *ShadowStore) Reset() {
	for _, sl := range s.slots {
		sl.tagged = 0
		sl.buf = sl.buf[:0]
		sl.qbuf = sl.qbuf[:0]
		sl.quant = false
	}
	clear(s.slots)
}
