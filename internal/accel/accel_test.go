package accel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func newTest(h uint32) *Accelerator {
	cfg := DefaultConfig()
	cfg.Threshold = h
	return New(cfg)
}

func TestIngestEmitsAtThreshold(t *testing.T) {
	a := newTest(4)
	for w := 0; w < 3; w++ {
		sum, done, _ := a.Ingest(0, []float32{1, 2, 3})
		if done || sum != nil {
			t.Fatalf("emitted after %d of 4 contributions", w+1)
		}
	}
	sum, done, _ := a.Ingest(0, []float32{1, 2, 3})
	if !done {
		t.Fatal("no emission at threshold")
	}
	want := []float32{4, 8, 12}
	for i := range want {
		if sum[i] != want[i] {
			t.Fatalf("sum = %v, want %v", sum, want)
		}
	}
	if a.Pending() != 0 {
		t.Fatalf("pending = %d after emission", a.Pending())
	}
}

func TestSegmentsAreIndependent(t *testing.T) {
	a := newTest(2)
	a.Ingest(0, []float32{1})
	a.Ingest(7, []float32{10})
	sum0, done0, _ := a.Ingest(0, []float32{2})
	if !done0 || sum0[0] != 3 {
		t.Fatalf("seg 0: done=%v sum=%v", done0, sum0)
	}
	sum7, done7, _ := a.Ingest(7, []float32{20})
	if !done7 || sum7[0] != 30 {
		t.Fatalf("seg 7: done=%v sum=%v", done7, sum7)
	}
}

func TestBufferZeroedBetweenRounds(t *testing.T) {
	a := newTest(2)
	a.Ingest(0, []float32{5})
	a.Ingest(0, []float32{5}) // emits 10, buffer must reset
	a.Ingest(0, []float32{1})
	sum, done, _ := a.Ingest(0, []float32{1})
	if !done || sum[0] != 2 {
		t.Fatalf("second round sum = %v (stale buffer?)", sum)
	}
}

func TestSetThreshold(t *testing.T) {
	a := newTest(4)
	if err := a.SetThreshold(2); err != nil {
		t.Fatal(err)
	}
	a.Ingest(0, []float32{1})
	_, done, _ := a.Ingest(0, []float32{1})
	if !done {
		t.Fatal("threshold update not applied")
	}
	if err := a.SetThreshold(0); err == nil {
		t.Fatal("accepted H=0")
	}
}

func TestReset(t *testing.T) {
	a := newTest(3)
	a.Ingest(0, []float32{1})
	a.Ingest(1, []float32{1})
	a.Reset()
	if a.Pending() != 0 {
		t.Fatalf("pending = %d after reset", a.Pending())
	}
	a.Ingest(0, []float32{2})
	a.Ingest(0, []float32{2})
	sum, done, _ := a.Ingest(0, []float32{2})
	if !done || sum[0] != 6 {
		t.Fatalf("post-reset sum = %v done=%v (counter not cleared)", sum, done)
	}
}

func TestFlushPartial(t *testing.T) {
	a := newTest(4)
	a.Ingest(3, []float32{1, 1})
	a.Ingest(3, []float32{2, 2})
	sum, count, ok := a.Flush(3)
	if !ok || count != 2 {
		t.Fatalf("flush: ok=%v count=%d", ok, count)
	}
	if sum[0] != 3 || sum[1] != 3 {
		t.Fatalf("flush sum = %v", sum)
	}
	if _, _, ok := a.Flush(3); ok {
		t.Fatal("second flush of same segment succeeded")
	}
}

func TestFlushAllOrdering(t *testing.T) {
	a := newTest(4)
	for _, s := range []uint64{9, 2, 5} {
		a.Ingest(s, []float32{1})
	}
	got := a.FlushAll()
	want := []uint64{2, 5, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FlushAll order = %v, want %v", got, want)
		}
	}
	if a.Pending() != 0 {
		t.Fatal("segments remain after FlushAll")
	}
}

func TestLatencyScalesWithPayload(t *testing.T) {
	a := newTest(1)
	small := a.PacketLatency(8)   // one burst of payload
	large := a.PacketLatency(366) // full packet
	if small <= 0 || large <= small {
		t.Fatalf("latencies small=%v large=%v", small, large)
	}
	// 366 floats = 1464 bytes = 46 bursts; header = 50 bytes = 2 bursts;
	// pipeline 8 → 56 cycles at 200MHz = 280ns.
	want := 280 * time.Nanosecond
	if large != want {
		t.Fatalf("full-packet latency = %v, want %v", large, want)
	}
}

func TestStatsAccounting(t *testing.T) {
	a := newTest(2)
	a.Ingest(0, make([]float32, 366))
	a.Ingest(0, make([]float32, 366))
	a.Ingest(1, []float32{1})
	st := a.Stats()
	if st.PacketsIn != 3 || st.PacketsOut != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BurstsAdded != 46+46+1 {
		t.Fatalf("bursts = %d", st.BurstsAdded)
	}
	a.FlushAll()
	if a.Stats().Flushes != 1 {
		t.Fatalf("flushes = %d", a.Stats().Flushes)
	}
}

// Property: for any packet arrival interleaving across workers, the
// emitted sums equal the element-wise sum of worker contributions.
// Integer-valued floats make float32 addition exactly associative here.
func TestAggregationOrderInvariantQuick(t *testing.T) {
	f := func(seed int64, nWorkers8 uint8, nSegs8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nWorkers := int(nWorkers8%6) + 2 // 2..7
		nSegs := int(nSegs8%5) + 1       // 1..5
		segLen := 16

		// Worker contributions: small integers, exact in float32.
		contrib := make([][][]float32, nWorkers)
		for w := range contrib {
			contrib[w] = make([][]float32, nSegs)
			for s := range contrib[w] {
				v := make([]float32, segLen)
				for i := range v {
					v[i] = float32(rng.Intn(200) - 100)
				}
				contrib[w][s] = v
			}
		}
		// Random interleaving of (worker, seg) packet arrivals.
		type pkt struct{ w, s int }
		var order []pkt
		for w := 0; w < nWorkers; w++ {
			for s := 0; s < nSegs; s++ {
				order = append(order, pkt{w, s})
			}
		}
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })

		a := newTest(uint32(nWorkers))
		emitted := make(map[int][]float32)
		for _, pk := range order {
			sum, done, _ := a.Ingest(uint64(pk.s), contrib[pk.w][pk.s])
			if done {
				emitted[pk.s] = sum
			}
		}
		if len(emitted) != nSegs || a.Pending() != 0 {
			return false
		}
		for s := 0; s < nSegs; s++ {
			for i := 0; i < segLen; i++ {
				var want float32
				for w := 0; w < nWorkers; w++ {
					want += contrib[w][s][i]
				}
				if emitted[s][i] != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// With arbitrary floats the sum depends on addition order only within
// float32 rounding; verify the result stays within a tight relative
// tolerance of the float64 reference.
func TestAggregationFloatTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const workers, n = 8, 512
	contrib := make([][]float32, workers)
	ref := make([]float64, n)
	for w := range contrib {
		contrib[w] = make([]float32, n)
		for i := range contrib[w] {
			contrib[w][i] = (rng.Float32()*2 - 1) * 10
			ref[i] += float64(contrib[w][i])
		}
	}
	a := newTest(workers)
	var sum []float32
	for w := 0; w < workers; w++ {
		var done bool
		sum, done, _ = a.Ingest(0, contrib[w])
		if done != (w == workers-1) {
			t.Fatalf("done=%v at worker %d", done, w)
		}
	}
	for i := range sum {
		if math.Abs(float64(sum[i])-ref[i]) > 1e-3 {
			t.Fatalf("element %d: %v vs reference %v", i, sum[i], ref[i])
		}
	}
}

func TestWholeVectorMatchesOnTheFly(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const workers, n = 4, 300
	contrib := make([][]float32, workers)
	for w := range contrib {
		contrib[w] = make([]float32, n)
		for i := range contrib[w] {
			contrib[w][i] = float32(rng.Intn(100))
		}
	}
	wv := NewWholeVector(n, workers)
	a := newTest(workers)
	var fly []float32
	for w := 0; w < workers; w++ {
		if err := wv.Add(contrib[w]); err != nil {
			t.Fatal(err)
		}
		s, done, _ := a.Ingest(0, contrib[w])
		if done {
			fly = s
		}
	}
	sum, err := wv.Sum()
	if err != nil {
		t.Fatal(err)
	}
	for i := range sum {
		if sum[i] != fly[i] {
			t.Fatalf("element %d: whole-vector %v vs on-the-fly %v", i, sum[i], fly[i])
		}
	}
}

func TestWholeVectorErrors(t *testing.T) {
	wv := NewWholeVector(4, 2)
	if err := wv.Add([]float32{1}); err == nil {
		t.Fatal("accepted wrong length")
	}
	if _, err := wv.Sum(); err == nil {
		t.Fatal("summed before ready")
	}
	wv.Add(make([]float32, 4))
	wv.Add(make([]float32, 4))
	if err := wv.Add(make([]float32, 4)); err == nil {
		t.Fatal("accepted extra vector")
	}
	if _, err := wv.Sum(); err != nil {
		t.Fatal(err)
	}
	// Reusable after Sum.
	if err := wv.Add(make([]float32, 4)); err != nil {
		t.Fatal(err)
	}
}

func TestSumLatency(t *testing.T) {
	d := SumLatency(1000, 4, 1e9)
	if d != 4*time.Microsecond {
		t.Fatalf("SumLatency = %v, want 4µs", d)
	}
}

func TestConfigValidation(t *testing.T) {
	for _, bad := range []Config{
		{BusWidthBits: 0, ClockHz: 1e6},
		{BusWidthBits: 100, ClockHz: 1e6},
		{BusWidthBits: 256, ClockHz: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v accepted", bad)
				}
			}()
			New(bad)
		}()
	}
	if DefaultConfig().AddersPerCycle() != 8 {
		t.Fatalf("adders per cycle = %d, want 8", DefaultConfig().AddersPerCycle())
	}
}
