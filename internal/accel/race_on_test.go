//go:build race

package accel

// raceEnabled reports whether the race detector is active (allocation
// counts are unreliable under -race, so alloc tests skip).
const raceEnabled = true
