package accel

import "time"

// SharedBus models contention on the accelerator's single 256-bit
// internal bus when several jobs' packet bursts interleave. Within one
// job the existing per-packet cycle cost already accounts for the
// pipelined burst stream (the input arbiter serializes one job's
// packets back-to-back, which is what packetLatency charges); what a
// single-tenant model cannot see is a *different* job's burst train
// occupying the adders when a packet arrives. SharedBus keeps one
// busy-horizon per job: a packet must wait until every other job's
// horizon has passed, then occupies the bus for its own datapath time.
//
// With a single active job the cross-job horizon is always in the
// past, so Charge degenerates to the uncontended latency — the
// single-job timing-equivalence guarantee falls out by construction.
type SharedBus struct {
	horizon map[uint16]time.Duration

	// Bursts counts packets charged; Contended counts those that had
	// to wait behind another job; WaitTime accumulates that waiting.
	Bursts    uint64
	Contended uint64
	WaitTime  time.Duration
}

// NewSharedBus creates an idle bus.
func NewSharedBus() *SharedBus {
	return &SharedBus{horizon: make(map[uint16]time.Duration)}
}

// Charge runs one packet of the given job through the bus at virtual
// time now, occupying it for d (the packet's uncontended datapath
// time). It returns the packet's total latency: queueing behind other
// jobs' bursts plus d.
func (b *SharedBus) Charge(now time.Duration, job uint16, d time.Duration) time.Duration {
	start := now
	for j, h := range b.horizon {
		if j != job && h > start {
			start = h
		}
	}
	finish := start + d
	if finish > b.horizon[job] {
		b.horizon[job] = finish
	}
	b.Bursts++
	if start > now {
		b.Contended++
		b.WaitTime += start - now
	}
	return finish - now
}

// Forget drops a departed job's horizon entry.
func (b *SharedBus) Forget(job uint16) { delete(b.horizon, job) }

// HorizonOf reports a job's busy horizon (tests).
func (b *SharedBus) HorizonOf(job uint16) time.Duration { return b.horizon[job] }
