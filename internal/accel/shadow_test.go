package accel

import (
	"testing"

	"iswitch/internal/protocol"
)

func TestShadowStoreExactTagSemantics(t *testing.T) {
	s := NewShadowStore()
	seg := uint64(5)
	s.Put(protocol.TagSeg(3, seg), []float32{1, 2, 3})

	if got, ok := s.Get(protocol.TagSeg(3, seg)); !ok || len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("exact-tag Get = %v, %v; want [1 2 3], true", got, ok)
	}
	// A stale round and a future round both share the spatial index but
	// must miss: serving another round's sum corrupts the stalled worker.
	if _, ok := s.Get(protocol.TagSeg(2, seg)); ok {
		t.Fatal("stale-round Get hit; want miss")
	}
	if _, ok := s.Get(protocol.TagSeg(4, seg)); ok {
		t.Fatal("future-round Get hit; want miss")
	}
	if _, ok := s.Get(protocol.TagSeg(3, seg+1)); ok {
		t.Fatal("unknown-segment Get hit; want miss")
	}
	st := s.Stats()
	if st.Puts != 1 || st.Hits != 1 || st.Misses != 3 || st.Overwrites != 0 {
		t.Fatalf("stats = %+v; want 1 put, 1 hit, 3 misses, 0 overwrites", st)
	}
}

func TestShadowStoreOverwriteOnRoundReuse(t *testing.T) {
	s := NewShadowStore()
	seg := uint64(9)
	s.Put(protocol.TagSeg(1, seg), []float32{10})
	s.Put(protocol.TagSeg(2, seg), []float32{20})

	if _, ok := s.Get(protocol.TagSeg(1, seg)); ok {
		t.Fatal("round-1 copy survived round-2 Put; want evicted")
	}
	if got, ok := s.Get(protocol.TagSeg(2, seg)); !ok || got[0] != 20 {
		t.Fatalf("round-2 Get = %v, %v; want [20], true", got, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d; one segment must hold exactly one slot", s.Len())
	}
	if st := s.Stats(); st.Overwrites != 1 {
		t.Fatalf("Overwrites = %d, want 1", st.Overwrites)
	}

	// Re-Putting the same round into the same slot is a refresh, not an
	// overwrite.
	s.Put(protocol.TagSeg(2, seg), []float32{21})
	if st := s.Stats(); st.Overwrites != 1 {
		t.Fatalf("same-round re-Put counted as overwrite: %d", st.Overwrites)
	}
}

// TestShadowStoreUntagged pins the degraded async-mode contract: with no
// round tag (tag 0), the store serves the most recent emission per
// segment — the legacy emission-cache behavior.
func TestShadowStoreUntagged(t *testing.T) {
	s := NewShadowStore()
	s.Put(7, []float32{1})
	s.Put(7, []float32{2})
	if got, ok := s.Get(7); !ok || got[0] != 2 {
		t.Fatalf("untagged Get = %v, %v; want most recent [2], true", got, ok)
	}
}

func TestShadowStorePutCopiesAndReusesStorage(t *testing.T) {
	s := NewShadowStore()
	src := []float32{1, 2, 3}
	s.Put(protocol.TagSeg(1, 0), src)
	src[0] = 99
	if got, _ := s.Get(protocol.TagSeg(1, 0)); got[0] != 1 {
		t.Fatalf("Put aliased the caller's buffer: got[0] = %v", got[0])
	}

	// The slot's backing array must be recycled across rounds — the
	// hardware analogue is a fixed double-buffered BRAM bank, so steady
	// state allocates nothing.
	first, _ := s.Get(protocol.TagSeg(1, 0))
	s.Put(protocol.TagSeg(2, 0), []float32{4, 5, 6})
	second, _ := s.Get(protocol.TagSeg(2, 0))
	if &first[0] != &second[0] {
		t.Fatal("round reuse reallocated the slot buffer; want in-place recycle")
	}
}

func TestShadowStoreReset(t *testing.T) {
	s := NewShadowStore()
	for seg := uint64(0); seg < 4; seg++ {
		s.Put(protocol.TagSeg(1, seg), []float32{float32(seg)})
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", s.Len())
	}
	if _, ok := s.Get(protocol.TagSeg(1, 0)); ok {
		t.Fatal("Get hit after Reset")
	}
	// Counters survive Reset (job reset clears state, not telemetry).
	if st := s.Stats(); st.Puts != 4 {
		t.Fatalf("Puts after Reset = %d, want 4", st.Puts)
	}
}
