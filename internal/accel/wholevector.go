package accel

import (
	"fmt"
	"time"
)

// WholeVectorAggregator is the conventional aggregation baseline of
// Figure 8a: each worker's entire gradient vector is buffered, and
// summation starts only after every vector has fully arrived. Parameter
// servers (and the AllReduce step reductions) behave this way, which is
// what the on-the-fly accelerator is measured against in the Figure 8
// ablation.
type WholeVectorAggregator struct {
	n        int
	expected int
	vectors  [][]float32
}

// NewWholeVector creates an aggregator for `expected` vectors of n
// elements each.
func NewWholeVector(n, expected int) *WholeVectorAggregator {
	if expected < 1 {
		panic("accel: whole-vector aggregator needs expected >= 1")
	}
	return &WholeVectorAggregator{n: n, expected: expected}
}

// Add buffers one complete gradient vector.
func (w *WholeVectorAggregator) Add(vec []float32) error {
	if len(vec) != w.n {
		return fmt.Errorf("accel: vector length %d, want %d", len(vec), w.n)
	}
	if len(w.vectors) == w.expected {
		return fmt.Errorf("accel: already holds %d vectors", w.expected)
	}
	w.vectors = append(w.vectors, vec)
	return nil
}

// Ready reports whether all expected vectors have arrived.
func (w *WholeVectorAggregator) Ready() bool { return len(w.vectors) == w.expected }

// Sum performs the deferred summation in arrival order and resets the
// aggregator for the next round.
func (w *WholeVectorAggregator) Sum() ([]float32, error) {
	if !w.Ready() {
		return nil, fmt.Errorf("accel: only %d of %d vectors arrived", len(w.vectors), w.expected)
	}
	out := make([]float32, w.n)
	for _, vec := range w.vectors {
		for i, v := range vec {
			out[i] += v
		}
	}
	w.vectors = w.vectors[:0]
	return out, nil
}

// SumLatency models the deferred-summation time for a software
// aggregator adding `expected` vectors of n elements at addsPerSecond
// element-additions per second. Used by the parameter-server timing
// model and the Figure 8 ablation.
func SumLatency(n, expected int, addsPerSecond float64) time.Duration {
	if addsPerSecond <= 0 {
		panic("accel: addsPerSecond must be positive")
	}
	ops := float64(n) * float64(expected)
	return time.Duration(ops / addsPerSecond * float64(time.Second))
}
