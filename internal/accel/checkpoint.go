// Checkpoint/restore for the accelerator's per-job SRAM state. A
// preempting scheduler serializes a job's aggregation contexts (the
// in-progress segment buffers, counters, and contributor bitmaps) and
// its shadow slots, evicts the job to free the SRAM, and later restores
// the state bit-identically — so a preempted job resumes mid-round as
// if the eviction never happened. Snapshots are plain data (deep
// copies, sorted deterministically) plus a versioned little-endian
// binary encoding, mirroring how a control plane would DMA the BRAM
// contents out to host memory.
package accel

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"iswitch/internal/protocol"
)

// SegSnapshot is one pending segment's accumulation state. Exactly one
// of Buf (float32 datapath) or QBuf (saturating int32 datapath) is
// populated, matching the segment's live representation.
type SegSnapshot struct {
	Seg   uint64
	Count uint32
	Buf   []float32
	QBuf  []int32
	Seen  []string // contributor bitmap, sorted
}

// AccSnapshot is a deep copy of an Accelerator's aggregation state:
// threshold, dedup arming, and every pending segment in ascending
// segment order. Activity counters are deliberately excluded — they are
// observability, not datapath state.
type AccSnapshot struct {
	Threshold uint32
	Dedup     bool
	Segs      []SegSnapshot
}

// Snapshot deep-copies the accelerator's pending aggregation state.
func (a *Accelerator) Snapshot() *AccSnapshot {
	s := &AccSnapshot{Threshold: a.h, Dedup: a.dedup}
	for _, seg := range a.PendingSegs() {
		st := a.segs[seg]
		ss := SegSnapshot{Seg: seg, Count: st.count}
		if len(st.qbuf) > 0 {
			ss.QBuf = append([]int32(nil), st.qbuf...)
		} else {
			ss.Buf = append([]float32(nil), st.buf...)
		}
		for c := range st.seen {
			ss.Seen = append(ss.Seen, c)
		}
		sort.Strings(ss.Seen)
		s.Segs = append(s.Segs, ss)
	}
	return s
}

// Restore replaces the accelerator's aggregation state with a
// snapshot's: existing pending segments are discarded (recycled) and
// the snapshot's segments, threshold, and dedup arming are installed.
// The snapshot is not retained; buffers are copied in.
func (a *Accelerator) Restore(s *AccSnapshot) {
	for seg, st := range a.segs {
		delete(a.segs, seg)
		a.recycleState(st)
	}
	a.h = s.Threshold
	if a.h == 0 {
		a.h = 1
	}
	a.dedup = s.Dedup
	for _, ss := range s.Segs {
		var st *segState
		if ss.QBuf != nil {
			st = a.newSegStateQ(len(ss.QBuf))
			copy(st.qbuf, ss.QBuf)
		} else {
			st = a.newSegState(len(ss.Buf))
			copy(st.buf, ss.Buf)
		}
		st.count = ss.Count
		if len(ss.Seen) > 0 {
			st.seen = make(map[string]struct{}, len(ss.Seen))
			for _, c := range ss.Seen {
				st.seen[c] = struct{}{}
			}
		}
		a.segs[ss.Seg] = st
	}
}

// ShadowSlotSnapshot is one shadow slot's contents.
type ShadowSlotSnapshot struct {
	Tagged uint64
	Buf    []float32
	QBuf   []int32
	Shift  uint8
	Quant  bool
}

// ShadowSnapshot is a deep copy of a ShadowStore's slots, ordered by
// ascending spatial segment index.
type ShadowSnapshot struct {
	Slots []ShadowSlotSnapshot
}

// Snapshot deep-copies the store's slots.
func (s *ShadowStore) Snapshot() *ShadowSnapshot {
	idxs := make([]uint64, 0, len(s.slots))
	for idx := range s.slots {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	snap := &ShadowSnapshot{}
	for _, idx := range idxs {
		sl := s.slots[idx]
		ss := ShadowSlotSnapshot{Tagged: sl.tagged, Shift: sl.shift, Quant: sl.quant}
		if sl.quant {
			ss.QBuf = append([]int32(nil), sl.qbuf...)
		} else {
			ss.Buf = append([]float32(nil), sl.buf...)
		}
		snap.Slots = append(snap.Slots, ss)
	}
	return snap
}

// Restore replaces the store's slots with a snapshot's. Stats are kept
// (they count lifetime activity, not state).
func (s *ShadowStore) Restore(snap *ShadowSnapshot) {
	clear(s.slots)
	for _, ss := range snap.Slots {
		sl := &shadowSlot{tagged: ss.Tagged, shift: ss.Shift, quant: ss.Quant}
		if ss.Quant {
			sl.qbuf = append([]int32(nil), ss.QBuf...)
		} else {
			sl.buf = append([]float32(nil), ss.Buf...)
		}
		s.slots[protocol.SegIndex(ss.Tagged)] = sl
	}
}

// --- Binary encoding -----------------------------------------------------
//
// A little-endian, length-prefixed format with a leading version byte,
// built on an append-style writer so encoding is a single allocation.
// Floats are encoded by their IEEE-754 bit patterns, which is what
// makes the round trip bit-exact (including negative zero and any NaN
// payloads a pathological workload might produce).

const (
	accSnapVersion    = 1
	shadowSnapVersion = 1
)

type binWriter struct{ b []byte }

func (w *binWriter) u8(v uint8)   { w.b = append(w.b, v) }
func (w *binWriter) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *binWriter) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *binWriter) f32s(v []float32) {
	w.u32(uint32(len(v)))
	for _, f := range v {
		w.u32(math.Float32bits(f))
	}
}
func (w *binWriter) i32s(v []int32) {
	w.u32(uint32(len(v)))
	for _, q := range v {
		w.u32(uint32(q))
	}
}
func (w *binWriter) str(s string) {
	w.u32(uint32(len(s)))
	w.b = append(w.b, s...)
}

type binReader struct {
	b   []byte
	err error
}

func (r *binReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("accel: truncated snapshot (%s)", what)
	}
}
func (r *binReader) u8() uint8 {
	if r.err != nil || len(r.b) < 1 {
		r.fail("u8")
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}
func (r *binReader) u32() uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.fail("u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}
func (r *binReader) u64() uint64 {
	if r.err != nil || len(r.b) < 8 {
		r.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}
func (r *binReader) f32s() []float32 {
	n := int(r.u32())
	if r.err != nil || len(r.b) < 4*n {
		r.fail("f32s")
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(r.u32())
	}
	return out
}
func (r *binReader) i32s() []int32 {
	n := int(r.u32())
	if r.err != nil || len(r.b) < 4*n {
		r.fail("i32s")
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(r.u32())
	}
	return out
}
func (r *binReader) str() string {
	n := int(r.u32())
	if r.err != nil || len(r.b) < n {
		r.fail("str")
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (s *AccSnapshot) append(w *binWriter) {
	w.u8(accSnapVersion)
	w.u32(s.Threshold)
	if s.Dedup {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.u32(uint32(len(s.Segs)))
	for _, ss := range s.Segs {
		w.u64(ss.Seg)
		w.u32(ss.Count)
		if ss.QBuf != nil {
			w.u8(1)
			w.i32s(ss.QBuf)
		} else {
			w.u8(0)
			w.f32s(ss.Buf)
		}
		w.u32(uint32(len(ss.Seen)))
		for _, c := range ss.Seen {
			w.str(c)
		}
	}
}

func (s *AccSnapshot) read(r *binReader) {
	if v := r.u8(); r.err == nil && v != accSnapVersion {
		r.err = fmt.Errorf("accel: AccSnapshot version %d unsupported", v)
		return
	}
	s.Threshold = r.u32()
	s.Dedup = r.u8() != 0
	n := int(r.u32())
	for i := 0; i < n && r.err == nil; i++ {
		ss := SegSnapshot{Seg: r.u64(), Count: r.u32()}
		if r.u8() != 0 {
			ss.QBuf = r.i32s()
		} else {
			ss.Buf = r.f32s()
		}
		nc := int(r.u32())
		for j := 0; j < nc && r.err == nil; j++ {
			ss.Seen = append(ss.Seen, r.str())
		}
		if r.err == nil {
			s.Segs = append(s.Segs, ss)
		}
	}
}

// MarshalBinary encodes the snapshot.
func (s *AccSnapshot) MarshalBinary() ([]byte, error) {
	var w binWriter
	s.append(&w)
	return w.b, nil
}

// UnmarshalBinary decodes a snapshot encoded by MarshalBinary.
func (s *AccSnapshot) UnmarshalBinary(b []byte) error {
	*s = AccSnapshot{}
	r := binReader{b: b}
	s.read(&r)
	return r.err
}

func (s *ShadowSnapshot) append(w *binWriter) {
	w.u8(shadowSnapVersion)
	w.u32(uint32(len(s.Slots)))
	for _, sl := range s.Slots {
		w.u64(sl.Tagged)
		w.u8(sl.Shift)
		if sl.Quant {
			w.u8(1)
			w.i32s(sl.QBuf)
		} else {
			w.u8(0)
			w.f32s(sl.Buf)
		}
	}
}

func (s *ShadowSnapshot) read(r *binReader) {
	if v := r.u8(); r.err == nil && v != shadowSnapVersion {
		r.err = fmt.Errorf("accel: ShadowSnapshot version %d unsupported", v)
		return
	}
	n := int(r.u32())
	for i := 0; i < n && r.err == nil; i++ {
		sl := ShadowSlotSnapshot{Tagged: r.u64(), Shift: r.u8()}
		if r.u8() != 0 {
			sl.Quant = true
			sl.QBuf = r.i32s()
		} else {
			sl.Buf = r.f32s()
		}
		if r.err == nil {
			s.Slots = append(s.Slots, sl)
		}
	}
}

// MarshalBinary encodes the snapshot.
func (s *ShadowSnapshot) MarshalBinary() ([]byte, error) {
	var w binWriter
	s.append(&w)
	return w.b, nil
}

// UnmarshalBinary decodes a snapshot encoded by MarshalBinary.
func (s *ShadowSnapshot) UnmarshalBinary(b []byte) error {
	*s = ShadowSnapshot{}
	r := binReader{b: b}
	s.read(&r)
	return r.err
}
