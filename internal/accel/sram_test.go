package accel

import (
	"testing"
	"time"
)

func TestContextDemand(t *testing.T) {
	// 1000 floats at 366/packet -> 3 segments: 4000 B payload + 3*8 B
	// bookkeeping.
	if d := ContextDemand(1000, 366); d != 4000+3*8 {
		t.Fatalf("demand = %d", d)
	}
	if d := ContextDemand(0, 366); d != 0 {
		t.Fatalf("zero-model demand = %d", d)
	}
	// Demand grows with the model and never goes negative.
	if ContextDemand(10, 366) >= ContextDemand(100000, 366) {
		t.Fatal("demand not monotone in model size")
	}
}

func TestSRAMPoolDemandPolicy(t *testing.T) {
	p := NewSRAMPool(1000, PartitionDemand, 0)
	if err := p.Reserve(1, 600); err != nil {
		t.Fatalf("reserve job 1: %v", err)
	}
	if err := p.Reserve(2, 600); err == nil {
		t.Fatal("overcommit accepted")
	}
	if p.Rejections != 1 {
		t.Fatalf("rejections = %d", p.Rejections)
	}
	if err := p.Reserve(2, 400); err != nil {
		t.Fatalf("exact-fit rejected: %v", err)
	}
	if p.Free() != 0 || p.Used() != 1000 || p.Jobs() != 2 {
		t.Fatalf("free=%d used=%d jobs=%d", p.Free(), p.Used(), p.Jobs())
	}
	if err := p.Reserve(1, 1); err == nil {
		t.Fatal("duplicate reservation accepted")
	}
	if got := p.Release(1); got != 600 {
		t.Fatalf("release returned %d", got)
	}
	if p.Release(1) != 0 {
		t.Fatal("double release returned bytes")
	}
	if err := p.Reserve(3, 600); err != nil {
		t.Fatalf("freed SRAM not reusable: %v", err)
	}
}

func TestSRAMPoolStaticPolicy(t *testing.T) {
	p := NewSRAMPool(1000, PartitionStatic, 4) // 250 B slots
	if err := p.Reserve(1, 300); err == nil {
		t.Fatal("demand above slot size accepted")
	}
	for job := uint16(2); job <= 5; job++ {
		if err := p.Reserve(job, 10); err != nil {
			t.Fatalf("slot for job %d: %v", job, err)
		}
	}
	// A whole slot is charged regardless of demand.
	if p.Used() != 1000 {
		t.Fatalf("used = %d, want 4 full slots", p.Used())
	}
	if err := p.Reserve(6, 10); err == nil {
		t.Fatal("fifth job got a slot in a 4-slot pool")
	}
	p.Release(3)
	if err := p.Reserve(6, 10); err != nil {
		t.Fatalf("freed slot not reusable: %v", err)
	}
}

func TestSRAMPoolDefaults(t *testing.T) {
	p := NewSRAMPool(0, PartitionDemand, 0)
	if p.Total() != DefaultSRAMBytes {
		t.Fatalf("default total = %d", p.Total())
	}
	if p.Policy().String() != "demand" || PartitionStatic.String() != "static" {
		t.Fatal("policy names")
	}
}

func TestSharedBusSingleJobUncontended(t *testing.T) {
	b := NewSharedBus()
	d := 280 * time.Nanosecond
	now := time.Duration(0)
	// One job's packets never queue against each other, matching the
	// single-tenant per-packet latency model exactly.
	for i := 0; i < 5; i++ {
		if lat := b.Charge(now, 1, d); lat != d {
			t.Fatalf("packet %d latency %v, want %v", i, lat, d)
		}
		now += 50 * time.Nanosecond
	}
	if b.Contended != 0 || b.WaitTime != 0 {
		t.Fatalf("single job contended: %d, wait %v", b.Contended, b.WaitTime)
	}
}

func TestSharedBusCrossJobContention(t *testing.T) {
	b := NewSharedBus()
	d := 100 * time.Nanosecond
	// Job 1 occupies [0, 100ns); job 2 arrives at t=30 and must wait.
	if lat := b.Charge(0, 1, d); lat != d {
		t.Fatalf("job 1 latency %v", lat)
	}
	lat := b.Charge(30*time.Nanosecond, 2, d)
	if want := 170 * time.Nanosecond; lat != want { // 70 wait + 100 service
		t.Fatalf("job 2 latency %v, want %v", lat, want)
	}
	if b.Contended != 1 || b.WaitTime != 70*time.Nanosecond {
		t.Fatalf("contended=%d wait=%v", b.Contended, b.WaitTime)
	}
	// Job 1's next packet at t=50 queues behind job 2's horizon (200ns).
	if lat := b.Charge(50*time.Nanosecond, 1, d); lat != 250*time.Nanosecond {
		t.Fatalf("job 1 second latency %v", lat)
	}
	b.Forget(2)
	if b.HorizonOf(2) != 0 {
		t.Fatal("forget left a horizon")
	}
}
