package accel

import (
	"math"
	"reflect"
	"testing"

	"iswitch/internal/protocol"
)

func TestAccSnapshotRoundTrip(t *testing.T) {
	a := New(DefaultConfig())
	if err := a.SetThreshold(3); err != nil {
		t.Fatal(err)
	}
	a.SetDedup(true)
	// Two partial float segments with contributor bitmaps, awkward
	// float values included (negative zero, subnormal, huge).
	a.IngestFrom(0, "w0", []float32{1, float32(math.Copysign(0, -1)), 3})
	a.IngestFrom(0, "w1", []float32{0.5, 1e-42, -7})
	a.IngestFrom(7, "w2", []float32{1e30, -2, 0})

	snap := a.Snapshot()
	if len(snap.Segs) != 2 {
		t.Fatalf("snapshot has %d segs, want 2", len(snap.Segs))
	}

	// Binary round trip is exact.
	b, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back AccSnapshot
	if err := back.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, &back) {
		t.Fatalf("binary round trip diverged:\n got %+v\nwant %+v", &back, snap)
	}

	// Restore into a fresh accelerator reproduces the exact state:
	// the same snapshot again, and identical completion behaviour.
	fresh := New(DefaultConfig())
	fresh.Restore(snap)
	if !reflect.DeepEqual(fresh.Snapshot(), snap) {
		t.Fatal("restored accelerator snapshots differently")
	}
	if got := fresh.CountOf(0); got != 2 {
		t.Fatalf("restored seg 0 count = %d, want 2", got)
	}
	if got := fresh.SeenBy(0); !reflect.DeepEqual(got, []string{"w0", "w1"}) {
		t.Fatalf("restored seg 0 contributors = %v", got)
	}
	// Dedup survives: w0 retransmitting is still ignored.
	if _, done, _ := fresh.IngestFrom(0, "w0", []float32{9, 9, 9}); done {
		t.Fatal("duplicate contribution completed the segment after restore")
	}
	sum, done, _ := fresh.IngestFrom(0, "w3", []float32{1, 1, 1})
	if !done {
		t.Fatal("third distinct contribution should complete seg 0")
	}
	want0 := []float32{1 + 0.5 + 1, float32(math.Copysign(0, -1)) + 1e-42 + 1, 3 + -7 + 1}
	if !reflect.DeepEqual(sum, want0) {
		t.Fatalf("restored sum = %v, want %v", sum, want0)
	}
}

func TestAccSnapshotQuantRoundTrip(t *testing.T) {
	a := New(DefaultConfig())
	if err := a.SetThreshold(2); err != nil {
		t.Fatal(err)
	}
	a.SetDedup(true)
	a.IngestQFrom(protocol.TagSeg(3, 1), "w0", []int32{100, -200, 3000}, 2)

	snap := a.Snapshot()
	b, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back AccSnapshot
	if err := back.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, &back) {
		t.Fatal("quant binary round trip diverged")
	}

	fresh := New(DefaultConfig())
	fresh.Restore(snap)
	// Completing the segment on the restored accelerator matches
	// completing it on the original.
	sumA, shiftA, doneA, _ := a.IngestQFrom(protocol.TagSeg(3, 1), "w1", []int32{1, 2, 3}, 0)
	sumB, shiftB, doneB, _ := fresh.IngestQFrom(protocol.TagSeg(3, 1), "w1", []int32{1, 2, 3}, 0)
	if !doneA || !doneB {
		t.Fatal("second contribution should complete the quant segment")
	}
	if shiftA != shiftB || !reflect.DeepEqual(sumA, sumB) {
		t.Fatalf("restored quant sum diverged: %v<<%d vs %v<<%d", sumB, shiftB, sumA, shiftA)
	}
}

func TestShadowSnapshotRoundTrip(t *testing.T) {
	s := NewShadowStore()
	s.Put(protocol.TagSeg(4, 0), []float32{1.5, float32(math.Copysign(0, -1)), -3})
	s.PutQ(protocol.TagSeg(4, 1), []int32{7, -8, 9}, 3)

	snap := s.Snapshot()
	if len(snap.Slots) != 2 {
		t.Fatalf("snapshot has %d slots, want 2", len(snap.Slots))
	}
	b, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back ShadowSnapshot
	if err := back.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, &back) {
		t.Fatal("shadow binary round trip diverged")
	}

	fresh := NewShadowStore()
	fresh.Restore(snap)
	if got, ok := fresh.Get(protocol.TagSeg(4, 0)); !ok || !reflect.DeepEqual(got, []float32{1.5, float32(math.Copysign(0, -1)), -3}) {
		t.Fatalf("restored float slot = %v ok=%v", got, ok)
	}
	if q, shift, ok := fresh.GetQ(protocol.TagSeg(4, 1)); !ok || shift != 3 || !reflect.DeepEqual(q, []int32{7, -8, 9}) {
		t.Fatalf("restored quant slot = %v<<%d ok=%v", q, shift, ok)
	}
	// Round-tag mismatch still misses after restore.
	if _, ok := fresh.Get(protocol.TagSeg(5, 0)); ok {
		t.Fatal("stale round served from restored shadow")
	}
}

func TestSnapshotDecodeErrors(t *testing.T) {
	var acc AccSnapshot
	if err := acc.UnmarshalBinary(nil); err == nil {
		t.Fatal("empty AccSnapshot decoded without error")
	}
	if err := acc.UnmarshalBinary([]byte{99}); err == nil {
		t.Fatal("bad version decoded without error")
	}
	var sh ShadowSnapshot
	if err := sh.UnmarshalBinary([]byte{shadowSnapVersion, 1, 0, 0, 0}); err == nil {
		t.Fatal("truncated ShadowSnapshot decoded without error")
	}
}
