// Package parallel provides a bounded worker pool for fanning out
// independent pieces of work while keeping results deterministic.
//
// Every table and figure of the reproduction is built from many
// isolated simulation runs (each with its own sim.Kernel and seeded
// RNGs), so they can execute concurrently without changing a single
// output byte — as long as results are assembled in submission order.
// Map and MapOrdered guarantee exactly that: execution order is
// arbitrary, result order is by submission index.
//
// Panics inside workers are recovered and surfaced as *PanicError so a
// single failing experiment cannot take down the whole batch without a
// summary (callers decide whether to re-panic or report and exit).
package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Workers normalizes a requested worker count: values below 1 select
// GOMAXPROCS, everything else is returned unchanged.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// PanicError records a panic recovered from a worker.
type PanicError struct {
	// Index is the submission index of the work item that panicked.
	Index int
	// Value is the value passed to panic.
	Value any
	// Stack is the worker goroutine's stack at recovery time.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: task %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// MapOrdered runs fn(i) for every i in [0, n) on at most `workers`
// goroutines (clamped via Workers) and calls emit(i, result) strictly
// in submission-index order, each as soon as that result and all
// earlier ones are available. emit runs on the calling goroutine and
// may be nil. Items whose fn panicked are skipped by emit; their
// panics are returned joined as *PanicError values. All items run to
// completion even when some panic.
func MapOrdered[T any](workers, n int, fn func(int) T, emit func(int, T)) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}

	out := make([]T, n)
	errs := make([]error, n)
	ready := make([]chan struct{}, n)
	for i := range ready {
		ready[i] = make(chan struct{})
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							errs[i] = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
						}
						close(ready[i])
					}()
					out[i] = fn(i)
				}()
			}
		}()
	}

	var failures []error
	for i := 0; i < n; i++ {
		<-ready[i]
		if errs[i] != nil {
			failures = append(failures, errs[i])
			continue
		}
		if emit != nil {
			emit(i, out[i])
		}
	}
	wg.Wait()
	return errors.Join(failures...)
}

// Map runs fn(i) for every i in [0, n) on at most `workers` goroutines
// and returns the n results ordered by submission index. Entries whose
// fn panicked hold the zero value; the panics come back joined as
// *PanicError values in err.
func Map[T any](workers, n int, fn func(int) T) ([]T, error) {
	out := make([]T, n)
	err := MapOrdered(workers, n, fn, func(i int, v T) { out[i] = v })
	return out, err
}

// MustMap is Map for callers that keep panic semantics: if any item
// panicked, MustMap re-panics with the first *PanicError (which carries
// the original panic value and worker stack).
func MustMap[T any](workers, n int, fn func(int) T) []T {
	out, err := Map(workers, n, fn)
	if err != nil {
		var pe *PanicError
		if errors.As(err, &pe) {
			panic(pe)
		}
		panic(err)
	}
	return out
}
