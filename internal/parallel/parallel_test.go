package parallel

import (
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdersResultsBySubmissionIndex(t *testing.T) {
	const n = 64
	out, err := Map(8, n, func(i int) int {
		// Skew the execution order: later items finish first.
		time.Sleep(time.Duration(n-i) * 10 * time.Microsecond)
		return i * i
	})
	if err != nil {
		t.Fatalf("Map error: %v", err)
	}
	if len(out) != n {
		t.Fatalf("got %d results, want %d", len(out), n)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapOrderedEmitsInOrder(t *testing.T) {
	const n = 32
	var got []int
	err := MapOrdered(4, n, func(i int) int {
		time.Sleep(time.Duration((i*7)%5) * time.Millisecond)
		return i
	}, func(i, v int) {
		if i != v {
			t.Errorf("emit(%d, %d) mismatched", i, v)
		}
		got = append(got, i)
	})
	if err != nil {
		t.Fatalf("MapOrdered error: %v", err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("emit order %v not ascending", got)
		}
	}
	if len(got) != n {
		t.Fatalf("emitted %d, want %d", len(got), n)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	_, err := Map(workers, 24, func(i int) int {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		inFlight.Add(-1)
		return i
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds pool size %d", p, workers)
	}
}

func TestMapRecoversPanicsAndCompletesRest(t *testing.T) {
	const n = 16
	var ran atomic.Int64
	out, err := Map(4, n, func(i int) int {
		ran.Add(1)
		if i == 5 || i == 11 {
			panic("boom")
		}
		return i
	})
	if err == nil {
		t.Fatal("want error from panicking tasks")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v does not unwrap to *PanicError", err)
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Fatalf("error %v missing panic value", err)
	}
	if ran.Load() != n {
		t.Fatalf("only %d/%d tasks ran; all must complete despite panics", ran.Load(), n)
	}
	// Non-panicking results intact.
	for _, i := range []int{0, 4, 6, 10, 12, n - 1} {
		if out[i] != i {
			t.Errorf("out[%d] = %d, want %d", i, out[i], i)
		}
	}
}

func TestMustMapRepanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MustMap did not re-panic")
		}
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("re-panic value %T, want *PanicError", r)
		}
		if pe.Value != "kaboom" {
			t.Fatalf("panic value %v, want kaboom", pe.Value)
		}
	}()
	MustMap(2, 4, func(i int) int {
		if i == 2 {
			panic("kaboom")
		}
		return i
	})
}

func TestWorkersClamp(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d", got)
	}
}

func TestMapZeroItems(t *testing.T) {
	out, err := Map(4, 0, func(i int) int { return i })
	if err != nil || len(out) != 0 {
		t.Fatalf("Map(…, 0, …) = %v, %v", out, err)
	}
}
