package trace

import (
	"strings"
	"testing"
	"time"
)

func TestRecordAndRender(t *testing.T) {
	r := New(10)
	r.Record(100*time.Nanosecond, "w0/nic", "tx", "data seg=0")
	r.Record(550*time.Nanosecond, "sw0/p0", "rx", "data seg=0")
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	out := r.String()
	for _, want := range []string{"100ns", "w0/nic", "tx", "data seg=0", "sw0/p0", "rx"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestCapAndOverflow(t *testing.T) {
	r := New(3)
	for i := 0; i < 5; i++ {
		r.Record(time.Duration(i), "s", "tx", "")
	}
	if r.Len() != 3 || r.Overflowed() != 2 {
		t.Fatalf("len=%d overflow=%d", r.Len(), r.Overflowed())
	}
	if !strings.Contains(r.String(), "+2 events beyond") {
		t.Fatalf("overflow not rendered:\n%s", r.String())
	}
}

func TestFilterAndBetween(t *testing.T) {
	r := New(0)
	r.Record(1, "a", "tx", "")
	r.Record(2, "b", "rx", "")
	r.Record(3, "c", "tx", "")
	if got := len(r.Filter("tx")); got != 2 {
		t.Fatalf("tx events = %d", got)
	}
	if got := len(r.Between(2, 3)); got != 1 {
		t.Fatalf("between = %d", got)
	}
}

func TestRingKeepsNewest(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 7; i++ {
		r.Record(time.Duration(i), "s", "tx", "")
	}
	if r.Len() != 3 || r.Overflowed() != 4 {
		t.Fatalf("len=%d overflow=%d", r.Len(), r.Overflowed())
	}
	ev := r.Events()
	for i, want := range []time.Duration{4, 5, 6} {
		if ev[i].Time != want {
			t.Fatalf("event %d at %v, want %v (ring should keep newest in order)", i, ev[i].Time, want)
		}
	}
	if !strings.Contains(r.String(), "4 older events overwritten") {
		t.Fatalf("ring overflow not rendered:\n%s", r.String())
	}
}

func TestRingUnderCapBehavesLikeNew(t *testing.T) {
	r := NewRing(5)
	r.Record(1, "a", "tx", "")
	r.Record(2, "b", "rx", "")
	if r.Len() != 2 || r.Overflowed() != 0 {
		t.Fatalf("len=%d overflow=%d", r.Len(), r.Overflowed())
	}
	if ev := r.Events(); ev[0].Time != 1 || ev[1].Time != 2 {
		t.Fatalf("order wrong: %+v", ev)
	}
	if strings.Contains(r.String(), "overwritten") {
		t.Fatalf("no overflow yet:\n%s", r.String())
	}
}

func TestRingFilterSeesRotatedOrder(t *testing.T) {
	r := NewRing(2)
	r.Record(1, "a", "tx", "")
	r.Record(2, "b", "rx", "")
	r.Record(3, "c", "tx", "")
	tx := r.Filter("tx")
	if len(tx) != 1 || tx[0].Time != 3 {
		t.Fatalf("filter over ring wrong: %+v", tx)
	}
	if got := len(r.Between(2, 4)); got != 2 {
		t.Fatalf("between over ring = %d", got)
	}
}
