// Package trace records timestamped simulation events — packet
// transmissions, deliveries, drops — into a bounded in-memory timeline
// that renders as an aligned text waterfall. It is the debugging
// companion to the discrete-event network simulation: attach a Recorder
// to the ports of interest and read off exactly how an aggregation
// round moved through the fabric.
package trace

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Event is one recorded occurrence.
type Event struct {
	// Time is the virtual timestamp.
	Time time.Duration
	// Source identifies where it happened (port, switch, worker).
	Source string
	// Kind classifies it (e.g. "tx", "rx", "drop", "agg").
	Kind string
	// Detail is free-form context (packet type, segment, size).
	Detail string
}

// Recorder collects events up to a cap. Two overflow policies: the
// default keeps the oldest events (a run's opening moves), the ring
// mode (NewRing) overwrites the oldest to keep the newest (the moves
// right before whatever you are debugging). Overflow is counted either
// way.
type Recorder struct {
	events  []Event
	max     int
	dropped int
	// ring selects keep-newest overwrite mode; start is the ring's
	// oldest-element index once the buffer has wrapped.
	ring  bool
	start int
}

// New creates a recorder holding up to max events (≤ 0 means 64k),
// keeping the oldest on overflow.
func New(max int) *Recorder {
	if max <= 0 {
		max = 1 << 16
	}
	return &Recorder{max: max}
}

// NewRing creates a recorder holding up to max events (≤ 0 means 64k),
// keeping the newest on overflow: once full, each new event overwrites
// the oldest retained one.
func NewRing(max int) *Recorder {
	r := New(max)
	r.ring = true
	return r
}

// Record adds an event, applying the recorder's overflow policy.
func (r *Recorder) Record(at time.Duration, source, kind, detail string) {
	e := Event{Time: at, Source: source, Kind: kind, Detail: detail}
	if len(r.events) < r.max {
		r.events = append(r.events, e)
		return
	}
	r.dropped++
	if r.ring {
		r.events[r.start] = e
		r.start = (r.start + 1) % r.max
	}
}

// Len reports the number of retained events.
func (r *Recorder) Len() int { return len(r.events) }

// Overflowed reports how many events exceeded the cap (keep-oldest) or
// were overwritten (ring).
func (r *Recorder) Overflowed() int { return r.dropped }

// Events returns the retained events in record order (oldest retained
// first, in both overflow modes).
func (r *Recorder) Events() []Event {
	if !r.ring || r.start == 0 {
		return r.events
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.start:]...)
	return append(out, r.events[:r.start]...)
}

// Filter returns the events of one kind, preserving order.
func (r *Recorder) Filter(kind string) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Between returns events with lo <= Time < hi.
func (r *Recorder) Between(lo, hi time.Duration) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Time >= lo && e.Time < hi {
			out = append(out, e)
		}
	}
	return out
}

// Render writes an aligned waterfall: one line per event with the
// virtual timestamp, source, kind, and detail.
func (r *Recorder) Render(w io.Writer) error {
	events := r.Events()
	srcW, kindW := 6, 4
	for _, e := range events {
		if len(e.Source) > srcW {
			srcW = len(e.Source)
		}
		if len(e.Kind) > kindW {
			kindW = len(e.Kind)
		}
	}
	if r.dropped > 0 && r.ring {
		if _, err := fmt.Fprintf(w, "(%d older events overwritten by the %d-event ring)\n",
			r.dropped, r.max); err != nil {
			return err
		}
	}
	for _, e := range events {
		if _, err := fmt.Fprintf(w, "%12s  %-*s  %-*s  %s\n",
			e.Time.Round(time.Nanosecond), srcW, e.Source, kindW, e.Kind, e.Detail); err != nil {
			return err
		}
	}
	if r.dropped > 0 && !r.ring {
		if _, err := fmt.Fprintf(w, "(+%d events beyond the %d-event cap)\n", r.dropped, r.max); err != nil {
			return err
		}
	}
	return nil
}

// String renders the timeline to a string.
func (r *Recorder) String() string {
	var b strings.Builder
	_ = r.Render(&b)
	return b.String()
}
