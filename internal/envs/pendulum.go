package envs

import (
	"math"
	"math/rand"
)

// Pendulum is the classic underactuated swing-up problem with the Gym
// parameterization — the stand-in for the paper's MuJoCo Hopper (PPO
// workload). The agent applies a bounded torque to swing a pendulum
// upright and hold it there; reward penalizes angle error, angular
// velocity, and control effort, so it is always ≤ 0.
type Pendulum struct {
	rng   *rand.Rand
	theta float64
	tDot  float64
	steps int

	// MaxSteps is the fixed episode length (default 200).
	MaxSteps int
	// SwingUp, when true, starts episodes at a uniform random angle
	// (the full Gym problem). The default false starts near upright, a
	// stabilization task like the paper's Hopper: the policy must learn
	// active balancing but not the exploration-heavy energy pumping.
	SwingUp bool
}

const (
	pdMaxTorque = 2.0
	pdMaxSpeed  = 8.0
	pdDT        = 0.05
	pdG         = 10.0
	pdM         = 1.0
	pdL         = 1.0
)

// NewPendulum creates a seeded Pendulum.
func NewPendulum(seed int64) *Pendulum {
	return &Pendulum{rng: rand.New(rand.NewSource(seed)), MaxSteps: 200}
}

// Name implements Env.
func (p *Pendulum) Name() string { return "Pendulum" }

// ObsDim implements Env: cosθ, sinθ, θ̇.
func (p *Pendulum) ObsDim() int { return 3 }

// ActionDim implements Continuous.
func (p *Pendulum) ActionDim() int { return 1 }

// Bound implements Continuous.
func (p *Pendulum) Bound() float32 { return pdMaxTorque }

// Reset implements Env.
func (p *Pendulum) Reset() []float32 {
	if p.SwingUp {
		p.theta = uniform(p.rng, -math.Pi, math.Pi)
		p.tDot = uniform(p.rng, -1, 1)
	} else {
		p.theta = uniform(p.rng, -0.8, 0.8)
		p.tDot = uniform(p.rng, -0.5, 0.5)
	}
	p.steps = 0
	return p.obs()
}

func (p *Pendulum) obs() []float32 {
	return []float32{
		float32(math.Cos(p.theta)),
		float32(math.Sin(p.theta)),
		float32(p.tDot / pdMaxSpeed),
	}
}

// Step implements Continuous.
func (p *Pendulum) Step(a []float32) ([]float32, float64, bool) {
	u := clampf(float64(a[0]), -pdMaxTorque, pdMaxTorque)
	angle := angleNorm(p.theta)
	cost := angle*angle + 0.1*p.tDot*p.tDot + 0.001*u*u

	p.tDot += (-3*pdG/(2*pdL)*math.Sin(p.theta+math.Pi) +
		3.0/(pdM*pdL*pdL)*u) * pdDT
	p.tDot = clampf(p.tDot, -pdMaxSpeed, pdMaxSpeed)
	p.theta += p.tDot * pdDT
	p.steps++

	return p.obs(), -cost, p.steps >= p.MaxSteps
}

// angleNorm wraps an angle into [−π, π).
func angleNorm(x float64) float64 {
	x = math.Mod(x+math.Pi, 2*math.Pi)
	if x < 0 {
		x += 2 * math.Pi
	}
	return x - math.Pi
}
