package envs

import "math/rand"

// GridPong is a small deterministic Pong on a W×H grid — the stand-in
// for the paper's Atari Pong/Qbert workloads. A ball bounces around the
// grid; the agent slides a paddle along the bottom edge. Returning the
// ball earns +1; missing it costs −1 and ends the episode. Episodes
// also end after MaxSteps or MaxRallies returns, so reward is bounded
// like an Atari game score.
type GridPong struct {
	rng    *rand.Rand
	w, h   int
	ballX  int
	ballY  int
	velX   int
	velY   int
	paddle int
	steps  int
	rally  int

	// MaxSteps caps episode length; MaxRallies caps the score.
	MaxSteps, MaxRallies int
	// PaddleWidth is the paddle extent in cells.
	PaddleWidth int
}

// NewGridPong creates a seeded GridPong on a 12×12 grid.
func NewGridPong(seed int64) *GridPong {
	return &GridPong{
		rng: rand.New(rand.NewSource(seed)), w: 12, h: 12,
		MaxSteps: 400, MaxRallies: 10, PaddleWidth: 3,
	}
}

// Name implements Env.
func (g *GridPong) Name() string { return "GridPong" }

// ObsDim implements Env: ball x/y, velocity x/y, paddle x.
func (g *GridPong) ObsDim() int { return 5 }

// NumActions implements Discrete: left, stay, right.
func (g *GridPong) NumActions() int { return 3 }

// Reset implements Env.
func (g *GridPong) Reset() []float32 {
	g.ballX = g.rng.Intn(g.w)
	g.ballY = g.h / 2
	g.velX = 1 - 2*g.rng.Intn(2)
	g.velY = 1
	g.paddle = g.w / 2
	g.steps = 0
	g.rally = 0
	return g.obs()
}

func (g *GridPong) obs() []float32 {
	return []float32{
		float32(g.ballX)/float32(g.w-1)*2 - 1,
		float32(g.ballY)/float32(g.h-1)*2 - 1,
		float32(g.velX),
		float32(g.velY),
		float32(g.paddle)/float32(g.w-1)*2 - 1,
	}
}

// Step implements Discrete.
func (g *GridPong) Step(a int) ([]float32, float64, bool) {
	switch a {
	case 0:
		if g.paddle > 0 {
			g.paddle--
		}
	case 2:
		if g.paddle < g.w-1 {
			g.paddle++
		}
	}
	g.ballX += g.velX
	g.ballY += g.velY
	if g.ballX <= 0 || g.ballX >= g.w-1 {
		g.velX = -g.velX
		g.ballX = clampInt(g.ballX, 0, g.w-1)
	}
	if g.ballY <= 0 {
		g.velY = -g.velY
		g.ballY = 0
	}
	g.steps++

	var reward float64
	done := false
	if g.ballY >= g.h-1 {
		half := g.PaddleWidth / 2
		if g.ballX >= g.paddle-half && g.ballX <= g.paddle+half {
			reward = 1
			g.rally++
			g.velY = -1
			g.ballY = g.h - 2
		} else {
			reward = -1
			done = true
		}
	}
	if g.steps >= g.MaxSteps || g.rally >= g.MaxRallies {
		done = true
	}
	return g.obs(), reward, done
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
