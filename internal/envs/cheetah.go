package envs

import (
	"math"
	"math/rand"
)

// PlanarCheetah is a two-actuator planar locomotion task — the stand-in
// for the paper's MuJoCo HalfCheetah (DDPG workload). Two "legs"
// oscillate at fixed phases; applying torque in phase with a leg's
// swing accelerates the body forward, out-of-phase torque brakes it.
// Reward is forward velocity minus a quadratic control cost, so the
// agent must learn a coordinated gait rather than a constant action.
type PlanarCheetah struct {
	rng    *rand.Rand
	phase1 float64
	phase2 float64
	vel    float64
	steps  int

	// MaxSteps is the fixed episode length (default 200).
	MaxSteps int
}

const (
	chOmega1   = 0.35 // leg 1 phase rate (rad/step)
	chOmega2   = 0.55 // leg 2 phase rate
	chFriction = 0.90
	chGain     = 0.35
	chCtrlCost = 0.05
	chMaxVel   = 4.0
)

// NewPlanarCheetah creates a seeded PlanarCheetah.
func NewPlanarCheetah(seed int64) *PlanarCheetah {
	return &PlanarCheetah{rng: rand.New(rand.NewSource(seed)), MaxSteps: 200}
}

// Name implements Env.
func (c *PlanarCheetah) Name() string { return "PlanarCheetah" }

// ObsDim implements Env: sin/cos of each leg phase plus body velocity.
func (c *PlanarCheetah) ObsDim() int { return 5 }

// ActionDim implements Continuous: one torque per leg.
func (c *PlanarCheetah) ActionDim() int { return 2 }

// Bound implements Continuous.
func (c *PlanarCheetah) Bound() float32 { return 1 }

// Reset implements Env.
func (c *PlanarCheetah) Reset() []float32 {
	c.phase1 = uniform(c.rng, -math.Pi, math.Pi)
	c.phase2 = uniform(c.rng, -math.Pi, math.Pi)
	c.vel = 0
	c.steps = 0
	return c.obs()
}

func (c *PlanarCheetah) obs() []float32 {
	return []float32{
		float32(math.Sin(c.phase1)), float32(math.Cos(c.phase1)),
		float32(math.Sin(c.phase2)), float32(math.Cos(c.phase2)),
		float32(c.vel / chMaxVel),
	}
}

// Step implements Continuous.
func (c *PlanarCheetah) Step(a []float32) ([]float32, float64, bool) {
	t1 := float64(clamp32(a[0], -1, 1))
	t2 := float64(clamp32(a[1], -1, 1))

	thrust := t1*math.Sin(c.phase1) + t2*math.Sin(c.phase2)
	c.vel = clampf(chFriction*c.vel+chGain*thrust, -chMaxVel, chMaxVel)
	c.phase1 += chOmega1
	c.phase2 += chOmega2
	c.steps++

	reward := c.vel - chCtrlCost*(t1*t1+t2*t2)
	return c.obs(), reward, c.steps >= c.MaxSteps
}
