package envs

import (
	"math"
	"testing"
)

// contractDiscrete exercises the generic Env contract for discrete envs.
func contractDiscrete(t *testing.T, e Discrete) {
	t.Helper()
	obs := e.Reset()
	if len(obs) != e.ObsDim() {
		t.Fatalf("%s: reset obs len %d, want %d", e.Name(), len(obs), e.ObsDim())
	}
	if e.NumActions() < 2 {
		t.Fatalf("%s: %d actions", e.Name(), e.NumActions())
	}
	steps := 0
	for a, done := 0, false; !done && steps < 100000; steps++ {
		var o []float32
		o, _, done = e.Step(a % e.NumActions())
		if len(o) != e.ObsDim() {
			t.Fatalf("%s: step obs len %d", e.Name(), len(o))
		}
		for _, x := range o {
			if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
				t.Fatalf("%s: non-finite obs %v", e.Name(), o)
			}
		}
		a++
	}
	if steps >= 100000 {
		t.Fatalf("%s: episode never terminated", e.Name())
	}
}

func contractContinuous(t *testing.T, e Continuous) {
	t.Helper()
	obs := e.Reset()
	if len(obs) != e.ObsDim() {
		t.Fatalf("%s: reset obs len %d, want %d", e.Name(), len(obs), e.ObsDim())
	}
	if e.ActionDim() < 1 || e.Bound() <= 0 {
		t.Fatalf("%s: bad action space", e.Name())
	}
	a := make([]float32, e.ActionDim())
	steps := 0
	for done := false; !done && steps < 100000; steps++ {
		for i := range a {
			a[i] = e.Bound() * float32(1-2*(steps%2))
		}
		var o []float32
		o, _, done = e.Step(a)
		for _, x := range o {
			if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
				t.Fatalf("%s: non-finite obs %v", e.Name(), o)
			}
		}
	}
	if steps >= 100000 {
		t.Fatalf("%s: episode never terminated", e.Name())
	}
}

func TestCartPoleContract(t *testing.T)      { contractDiscrete(t, NewCartPole(1)) }
func TestGridPongContract(t *testing.T)      { contractDiscrete(t, NewGridPong(1)) }
func TestPendulumContract(t *testing.T)      { contractContinuous(t, NewPendulum(1)) }
func TestPlanarCheetahContract(t *testing.T) { contractContinuous(t, NewPlanarCheetah(1)) }

func TestCartPoleFallsWithoutControl(t *testing.T) {
	e := NewCartPole(3)
	e.Reset()
	steps := 0
	for done := false; !done; steps++ {
		_, _, done = e.Step(1) // constant push must destabilize
	}
	if steps >= e.MaxSteps {
		t.Fatalf("constant action survived %d steps", steps)
	}
}

func TestCartPoleRewardIsPerStep(t *testing.T) {
	e := NewCartPole(4)
	e.Reset()
	_, r, _ := e.Step(0)
	if r != 1 {
		t.Fatalf("reward = %v, want 1", r)
	}
}

func TestGridPongMissEndsEpisode(t *testing.T) {
	e := NewGridPong(5)
	e.Reset()
	// Always move left: eventually the paddle misses.
	total := 0.0
	done := false
	for steps := 0; !done && steps < e.MaxSteps+1; steps++ {
		var r float64
		_, r, done = e.Step(0)
		total += r
	}
	if !done {
		t.Fatal("episode did not end")
	}
	if total > float64(e.MaxRallies) {
		t.Fatalf("score %v exceeds rally cap", total)
	}
}

func TestGridPongPerfectPaddleScores(t *testing.T) {
	e := NewGridPong(6)
	obs := e.Reset()
	total := 0.0
	done := false
	for steps := 0; !done && steps < e.MaxSteps+1; steps++ {
		// Follow the ball: obs[0] is ball x, obs[4] paddle x (both scaled).
		a := 1
		if obs[0] < obs[4] {
			a = 0
		} else if obs[0] > obs[4] {
			a = 2
		}
		var r float64
		obs, r, done = e.Step(a)
		total += r
	}
	if total < float64(e.MaxRallies) {
		t.Fatalf("ball-following paddle scored %v, want %d", total, e.MaxRallies)
	}
}

func TestPendulumRewardNonPositive(t *testing.T) {
	e := NewPendulum(7)
	e.Reset()
	for i := 0; i < e.MaxSteps; i++ {
		_, r, _ := e.Step([]float32{0})
		if r > 0 {
			t.Fatalf("reward %v > 0", r)
		}
	}
}

func TestPendulumEpisodeLength(t *testing.T) {
	e := NewPendulum(8)
	e.Reset()
	steps := 0
	for done := false; !done; steps++ {
		_, _, done = e.Step([]float32{1})
	}
	if steps != e.MaxSteps {
		t.Fatalf("episode length %d, want %d", steps, e.MaxSteps)
	}
}

func TestPendulumTorqueClamped(t *testing.T) {
	a := NewPendulum(9)
	b := NewPendulum(9)
	a.Reset()
	b.Reset()
	for i := 0; i < 10; i++ {
		oa, ra, _ := a.Step([]float32{100}) // must behave as +2
		ob, rb, _ := b.Step([]float32{pdMaxTorque})
		if ra != rb {
			t.Fatalf("step %d: rewards differ %v vs %v", i, ra, rb)
		}
		for j := range oa {
			if oa[j] != ob[j] {
				t.Fatalf("step %d: obs differ", i)
			}
		}
	}
}

func TestCheetahInPhaseTorqueMovesForward(t *testing.T) {
	e := NewPlanarCheetah(10)
	obs := e.Reset()
	total := 0.0
	for i := 0; i < e.MaxSteps; i++ {
		// Push each leg in the direction of its swing (obs carries
		// sin(phase) directly) — the intended gait.
		a := []float32{sign(obs[0]), sign(obs[2])}
		var r float64
		obs, r, _ = e.Step(a)
		total += r
	}
	if total < 100 {
		t.Fatalf("gait policy return %v, want strong forward progress", total)
	}
	// A zero policy must do strictly worse.
	e2 := NewPlanarCheetah(10)
	e2.Reset()
	zero := 0.0
	for i := 0; i < e2.MaxSteps; i++ {
		_, r, _ := e2.Step([]float32{0, 0})
		zero += r
	}
	if zero >= total {
		t.Fatalf("zero policy (%v) beat gait policy (%v)", zero, total)
	}
}

func TestEnvsDeterministicGivenSeed(t *testing.T) {
	a, b := NewCartPole(11), NewCartPole(11)
	oa, ob := a.Reset(), b.Reset()
	for i := range oa {
		if oa[i] != ob[i] {
			t.Fatal("same-seed resets differ")
		}
	}
	for i := 0; i < 50; i++ {
		xa, ra, da := a.Step(i % 2)
		xb, rb, db := b.Step(i % 2)
		if ra != rb || da != db {
			t.Fatal("same-seed trajectories diverge")
		}
		for j := range xa {
			if xa[j] != xb[j] {
				t.Fatal("same-seed observations diverge")
			}
		}
		if da {
			break
		}
	}
}

func sign(x float32) float32 {
	if x >= 0 {
		return 1
	}
	return -1
}
