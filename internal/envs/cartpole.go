package envs

import (
	"math"
	"math/rand"
)

// CartPole is the classic pole-balancing control problem (Barto, Sutton
// & Anderson 1983) with the standard Gym parameterization: push a cart
// left or right to keep the pole upright. Reward is +1 per step; the
// episode ends when the pole falls, the cart leaves the track, or the
// step cap is reached.
type CartPole struct {
	rng   *rand.Rand
	x     float64 // cart position
	xDot  float64
	theta float64 // pole angle
	tDot  float64
	steps int

	// MaxSteps caps the episode (default 500).
	MaxSteps int
}

const (
	cpGravity      = 9.8
	cpMassCart     = 1.0
	cpMassPole     = 0.1
	cpLength       = 0.5 // half pole length
	cpForce        = 10.0
	cpTau          = 0.02
	cpThetaLimit   = 12 * math.Pi / 180
	cpXLimit       = 2.4
	cpDefaultSteps = 500
)

// NewCartPole creates a seeded CartPole.
func NewCartPole(seed int64) *CartPole {
	return &CartPole{rng: rand.New(rand.NewSource(seed)), MaxSteps: cpDefaultSteps}
}

// Name implements Env.
func (c *CartPole) Name() string { return "CartPole" }

// ObsDim implements Env.
func (c *CartPole) ObsDim() int { return 4 }

// NumActions implements Discrete (push left, push right).
func (c *CartPole) NumActions() int { return 2 }

// Reset implements Env.
func (c *CartPole) Reset() []float32 {
	c.x = uniform(c.rng, -0.05, 0.05)
	c.xDot = uniform(c.rng, -0.05, 0.05)
	c.theta = uniform(c.rng, -0.05, 0.05)
	c.tDot = uniform(c.rng, -0.05, 0.05)
	c.steps = 0
	return c.obs()
}

func (c *CartPole) obs() []float32 {
	return []float32{float32(c.x), float32(c.xDot), float32(c.theta), float32(c.tDot)}
}

// Step implements Discrete.
func (c *CartPole) Step(a int) ([]float32, float64, bool) {
	force := cpForce
	if a == 0 {
		force = -cpForce
	}
	cosT := math.Cos(c.theta)
	sinT := math.Sin(c.theta)
	totalMass := cpMassCart + cpMassPole
	poleMassLength := cpMassPole * cpLength

	temp := (force + poleMassLength*c.tDot*c.tDot*sinT) / totalMass
	thetaAcc := (cpGravity*sinT - cosT*temp) /
		(cpLength * (4.0/3.0 - cpMassPole*cosT*cosT/totalMass))
	xAcc := temp - poleMassLength*thetaAcc*cosT/totalMass

	c.x += cpTau * c.xDot
	c.xDot += cpTau * xAcc
	c.theta += cpTau * c.tDot
	c.tDot += cpTau * thetaAcc
	c.steps++

	done := c.x < -cpXLimit || c.x > cpXLimit ||
		c.theta < -cpThetaLimit || c.theta > cpThetaLimit ||
		c.steps >= c.MaxSteps
	return c.obs(), 1.0, done
}
