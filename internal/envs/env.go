// Package envs provides the reinforcement-learning environments the
// training workloads interact with.
//
// The paper trains on Atari (DQN on Pong, A2C on Qbert) and MuJoCo
// (PPO on Hopper, DDPG on HalfCheetah). Neither suite is available to a
// pure-Go offline build, so this package supplies classic-control
// stand-ins with the same interface contract and the same role in each
// algorithm's evaluation: CartPole and GridPong for the discrete-action
// algorithms, Pendulum and PlanarCheetah for the continuous-control
// ones. DESIGN.md records the substitution; the timing layer separately
// carries the paper's exact model sizes, so network behaviour is
// unaffected by the swap.
package envs

import "math/rand"

// Env is the common environment surface.
type Env interface {
	// Name identifies the environment.
	Name() string
	// ObsDim is the observation vector length.
	ObsDim() int
	// Reset starts a new episode and returns the initial observation.
	Reset() []float32
}

// Discrete is an environment with a finite action set.
type Discrete interface {
	Env
	// NumActions is the size of the action set.
	NumActions() int
	// Step applies action a. done reports episode termination.
	Step(a int) (obs []float32, reward float64, done bool)
}

// Continuous is an environment with a box action space in
// [-Bound, +Bound]^ActionDim.
type Continuous interface {
	Env
	// ActionDim is the action vector length.
	ActionDim() int
	// Bound is the symmetric per-dimension action limit.
	Bound() float32
	// Step applies action a (clamped to bounds by the env).
	Step(a []float32) (obs []float32, reward float64, done bool)
}

func clampf(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func clamp32(x, lo, hi float32) float32 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// uniform returns a sample in [lo, hi).
func uniform(rng *rand.Rand, lo, hi float64) float64 {
	return lo + rng.Float64()*(hi-lo)
}
