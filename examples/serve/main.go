// Inference serving: train a small policy network briefly, move it
// through its wire checkpoint format, stand replica servers up on a
// simulated star fabric, and drive them with open-loop Poisson load at
// increasing arrival rates until the fleet saturates — the latency-vs-
// load curve an RL deployment lives on after training finishes.
//
// The replicas batch adaptively (a short batch window, closed early
// when the batch fills) and answer each observation with a zero-alloc
// batched forward pass through the checkpointed policy.
//
//	go run ./examples/serve
package main

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"iswitch/internal/nn"
	"iswitch/internal/serve"
)

func main() {
	// --- 1. Train briefly: regress the policy onto a fixed nonlinear
	// target so the checkpoint holds genuinely trained weights.
	dims := []int{16, 32, 32, 4}
	policy := nn.NewMLP(dims, nn.ActTanh, nn.ActNone, 1)
	opt := nn.NewSGD(0.01, 0.9)
	rng := rand.New(rand.NewSource(2))
	obs := make([]float32, dims[0])
	target := make([]float32, dims[len(dims)-1])
	dgrad := make([]float32, len(target))
	var loss float32
	for step := 0; step < 400; step++ {
		for i := range obs {
			obs[i] = rng.Float32()*2 - 1
		}
		for j := range target {
			target[j] = obs[j] * obs[j+4]
		}
		out := policy.Forward(obs)
		policy.ZeroGrads()
		loss = nn.MSE(out, target, dgrad)
		policy.Backward(dgrad)
		opt.Step(policy.Params(), policy.Grads())
	}
	fmt.Printf("trained policy %v for 400 SGD steps (final MSE %.4f)\n", dims, loss)

	// --- 2. Checkpoint to disk, the way a trainer hands off to serving.
	ckpt, err := os.CreateTemp("", "policy-*.ckpt")
	if err != nil {
		panic(err)
	}
	defer os.Remove(ckpt.Name())
	if err := policy.Save(ckpt); err != nil {
		panic(err)
	}
	if err := ckpt.Close(); err != nil {
		panic(err)
	}
	fi, _ := os.Stat(ckpt.Name())
	fmt.Printf("checkpointed to %s (%d bytes)\n\n", ckpt.Name(), fi.Size())

	// --- 3. Serve it: RunStar loads the checkpoint format on every
	// replica (the same Save/Load round trip, seeded identically), so
	// the fleet answers with exactly the weights written above.
	base := serve.StarConfig{
		Replicas: 3, Generators: 2, Dims: dims, Seed: 1,
		Gen: serve.GenConfig{
			Arrival:  serve.ArrivalPoisson,
			Select:   serve.SelectLeastOutstanding,
			Duration: 5 * time.Millisecond,
		},
	}
	fmt.Println("3 replicas, 2 Poisson generators, least-outstanding selection;")
	fmt.Println("doubling aggregate arrival rate until p99 > 400us or goodput < 85%:")
	fmt.Println()
	fmt.Printf("%10s %10s %9s %9s %9s %6s %6s\n",
		"offered/s", "achieved/s", "p50(us)", "p99(us)", "max(us)", "occ", "batch")
	curve := serve.RunUntilSaturation(base, serve.SweepConfig{})
	for _, pt := range curve {
		note := ""
		if pt.Saturated {
			note = "  <- saturated (" + pt.Reason + ")"
		}
		fmt.Printf("%10.0f %10.0f %9.1f %9.1f %9.1f %6.2f %6d%s\n",
			pt.M.Offered, pt.M.Achieved,
			float64(pt.M.P50)/1e3, float64(pt.M.P99)/1e3, float64(pt.M.Max)/1e3,
			pt.M.Occupancy, pt.M.MaxBatch, note)
	}
	last := curve[len(curve)-1]
	fmt.Printf("\nfleet saturates near %.0f req/s (occupancy %.2f); every request\n",
		last.Rate, last.M.Occupancy)
	fmt.Println("below that rate was answered from the checkpointed policy with")
	fmt.Println("zero lost responses.")
}
