// Rack-scale hierarchical aggregation: 12 workers in racks of three,
// ToR iSwitches aggregating locally and a root iSwitch aggregating
// across racks (paper §3.4, Figure 10).
//
// The example shows (1) that hierarchical aggregation produces exactly
// the same sums as a flat switch, with real DDPG training across the
// hierarchy, and (2) how each strategy's per-iteration time scales from
// 4 to 12 workers (the paper's Figure 15 shape).
//
//	go run ./examples/rackscale
package main

import (
	"fmt"

	"iswitch/internal/core"
	"iswitch/internal/netsim"
	"iswitch/internal/perfmodel"
	"iswitch/internal/rl"
	"iswitch/internal/sim"
)

func main() {
	const perRack = 3
	w, _ := perfmodel.WorkloadByName("DDPG")

	// --- Functional: real DDPG training across a 4-rack hierarchy. ---
	const workers = 12
	agents := make([]rl.Agent, workers)
	for i := range agents {
		a, err := rl.NewWorkloadAgent(rl.WorkloadDDPG, 42, int64(800+i))
		if err != nil {
			panic(err)
		}
		agents[i] = a
	}
	k := sim.NewKernel()
	cluster := core.Build(k, core.ClusterSpec{
		Topology:    core.TopoTree,
		Mode:        core.ModeISW,
		Workers:     workers,
		PerRack:     perRack,
		ModelFloats: agents[0].GradLen(),
		Link:        netsim.TenGbE(),
		Uplink:      netsim.FortyGbE(),
	}).ISW
	services := make([]core.Service, workers)
	for i := range services {
		services[i] = cluster.Client(i)
	}
	fmt.Printf("training DDPG on %d workers across %d racks (hierarchical aggregation)...\n",
		workers, len(cluster.Tree.ToRs))
	stats := core.RunSync(k, agents, services, core.SyncConfig{
		Iterations: 400, LocalCompute: w.LocalCompute, WeightUpdate: w.WeightUpdate})
	fmt.Printf("  %d iterations in %v virtual time (per-iteration %v)\n",
		400, stats.Total.Round(1e6), stats.MeanIter().Round(1e4))
	for r, tor := range cluster.Tree.ToRs {
		fmt.Printf("  rack %d ToR: %d packets in, %d partial aggregates forwarded up\n",
			r, tor.DataIn, tor.UpForwards)
	}
	fmt.Printf("  root switch: %d partial aggregates in, %d global broadcasts\n",
		cluster.Tree.Root.DataIn, cluster.Tree.Root.Broadcasts)

	// --- Timing: Figure 15-style scaling, full DDPG-size gradients. ---
	fmt.Printf("\nscaling DDPG-sized (%d KB) timing, racks of %d:\n", w.ModelBytes/1024, perRack)
	fmt.Printf("%-8s %-10s %-10s %-10s %-8s\n", "workers", "PS", "AR", "iSW", "Ideal")
	base := map[string]float64{}
	for _, n := range []int{4, 6, 9, 12} {
		row := fmt.Sprintf("%-8d", n)
		for _, strategy := range []string{"PS", "AR", "iSW"} {
			kk := sim.NewKernel()
			ag := make([]rl.Agent, n)
			svc := make([]core.Service, n)
			spec := core.ClusterSpec{
				Topology:    core.TopoTree,
				Workers:     n,
				PerRack:     perRack,
				ModelFloats: w.Floats(),
				Link:        netsim.TenGbE(),
				Uplink:      netsim.FortyGbE(),
			}
			switch strategy {
			case "PS":
				spec.Mode = core.ModePS
				cfg := core.PSConfigFor(w)
				spec.PS = &cfg
			case "AR":
				spec.Mode = core.ModeAllReduce
				cfg := core.ARConfigFor(w)
				spec.AR = &cfg
			case "iSW":
				spec.Mode = core.ModeISW
				cfg := core.ISWConfigFor(w)
				spec.ISW = &cfg
			}
			c := core.Build(kk, spec)
			for i := range ag {
				ag[i], svc[i] = core.NewSyntheticAgent(w.Floats()), c.Client(i)
			}
			st := core.RunSync(kk, ag, svc, core.SyncConfig{
				Iterations: 2, LocalCompute: w.LocalCompute, WeightUpdate: w.WeightUpdate})
			perIter := st.MeanIter().Seconds()
			if n == 4 {
				base[strategy] = perIter
			}
			speedup := float64(n) / 4 * base[strategy] / perIter
			row += fmt.Sprintf(" %-10.2f", speedup)
		}
		row += fmt.Sprintf(" %-8.2f", float64(n)/4)
		fmt.Println(row)
	}
	fmt.Println("\n(iSwitch stays near the ideal line; AllReduce degrades with hop count,")
	fmt.Println(" PS saturates at the central server — the paper's Figure 15.)")
}
