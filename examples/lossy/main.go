// Lossy-network training: synchronous distributed training surviving
// injected faults through the iSwitch reliability layer (paper §3.3).
// The whole fault model is one declarative netsim.FaultPlan — per-link
// loss, a mid-run crash/rejoin — applied to a cluster built from one
// declarative core.ClusterSpec. A worker whose broadcast stalls sends a
// Help; the switch answers from its per-round shadow slot or relays the
// Help to exactly the contributors it is missing; the contributor
// bitmap keeps every retransmission idempotent so the aggregated sums
// stay bit-exact.
//
//	go run ./examples/lossy
package main

import (
	"fmt"
	"time"

	"iswitch/internal/core"
	"iswitch/internal/netsim"
	"iswitch/internal/perfmodel"
	"iswitch/internal/rl"
	"iswitch/internal/sim"
)

func main() {
	const workers = 4
	const iterations = 2500
	const lossRate = 0.005 // 0.5% loss on worker 0's uplink and downlink

	agents := make([]rl.Agent, workers)
	for i := range agents {
		a, err := rl.NewWorkloadAgent(rl.WorkloadA2C, 42, int64(100+i))
		if err != nil {
			panic(err)
		}
		agents[i] = a
	}

	w, _ := perfmodel.WorkloadByName("A2C")
	link := netsim.TenGbE()

	// Arm worker-side recovery. RecoveryTimeoutFor sets the Help timer
	// from the perfmodel's expected round time, comfortably above one
	// iteration's compute+aggregation: a worker whose peers are merely
	// still computing must not mistake silence for loss.
	cfg := core.DefaultISWConfig()
	cfg.RecoveryTimeout = core.RecoveryTimeoutFor(w, link)

	// The fault model, as data: worker 0 suffers loss both ways, and
	// worker 2 crashes mid-upload at iteration 800, rejoining 30ms later.
	plan := &netsim.FaultPlan{
		Seed: 17,
		Links: []netsim.LinkFault{
			{Worker: 0, Dir: netsim.DirBoth, Loss: lossRate},
		},
		Crashes: []netsim.CrashFault{
			{Worker: 2, AtRound: 800, PartialSegs: 3, Rejoin: true, Outage: 30 * time.Millisecond},
		},
	}

	k := sim.NewKernel()
	cluster := core.Build(k, core.ClusterSpec{
		Topology:    core.TopoStar,
		Mode:        core.ModeISW,
		Workers:     workers,
		ModelFloats: agents[0].GradLen(),
		Link:        link,
		ISW:         &cfg,
		Dedup:       true, // contributor bitmap: targeted, idempotent recovery
		Faults:      plan,
	})

	services := make([]core.Service, workers)
	for i := range services {
		services[i] = cluster.Client(i)
	}
	fmt.Printf("training A2C over a lossy fabric (%.1f%% loss on worker 0's links, crash/rejoin at iter 800)...\n", lossRate*100)
	stats := core.RunSync(k, agents, services, core.SyncConfig{
		Iterations:   iterations,
		LocalCompute: w.LocalCompute,
		WeightUpdate: w.WeightUpdate,
	})

	rewards := stats.AllRewards()
	var early, late float64
	kth := len(rewards) / 5
	for _, r := range rewards[:kth] {
		early += r.Reward
	}
	for _, r := range rewards[len(rewards)-kth:] {
		late += r.Reward
	}
	fmt.Printf("\ncompleted all %d iterations in %v of virtual time\n", iterations, stats.Total.Round(1e6))
	fmt.Printf("reward: first fifth %.1f → last fifth %.1f (still learning through loss)\n",
		early/float64(kth), late/float64(kth))

	isw := cluster.ISW
	sw := isw.StarSwitch
	dropped := cluster.Workers()[0].Port().Dropped + sw.Switch().Ports()[0].Dropped
	acc := sw.Accelerator().Stats()
	shadow := sw.Shadow().Stats()
	fmt.Printf("\nrecovery machinery:\n")
	fmt.Printf("  packets dropped by the fabric:    %d\n", dropped)
	fmt.Printf("  Helps sent by stalled workers:    %d\n", isw.HelpsSent)
	fmt.Printf("  served from shadow slots:         %d\n", sw.HelpServed)
	fmt.Printf("  relayed to missing contributors:  %d\n", sw.HelpTargeted)
	fmt.Printf("  duplicate retransmits absorbed:   %d (contributor bitmap)\n", acc.DupDropped)
	fmt.Printf("  crash rejoins completed:          %d\n", isw.Rejoins)
	fmt.Printf("  shadow slots written/hit:         %d/%d\n", shadow.Puts, shadow.Hits)
	fmt.Printf("  per-iteration time:               %v (vs lossless ≈ %v)\n",
		stats.MeanIter().Round(1e4), (w.LocalCompute + w.WeightUpdate + 4*time.Millisecond).Round(1e4))
	fmt.Println("\nevery replica applied identical sums despite the faults — recovery is exact.")
}
