// Lossy-network training: synchronous distributed training surviving
// injected packet loss through the iSwitch recovery protocol
// (paper §3.3): a worker whose broadcast stalls sends a Help control
// message; the switch relays it; everyone retransmits the affected
// segment; the switch's contributor bitmap keeps the retransmissions
// idempotent so the aggregated sums stay bit-exact.
//
//	go run ./examples/lossy
package main

import (
	"fmt"
	"time"

	"iswitch/internal/core"
	"iswitch/internal/netsim"
	"iswitch/internal/perfmodel"
	"iswitch/internal/rl"
	"iswitch/internal/sim"
)

func main() {
	const workers = 4
	const iterations = 2500
	const lossRate = 0.005 // 0.5% loss on worker 0's uplink and downlink

	agents := make([]rl.Agent, workers)
	for i := range agents {
		a, err := rl.NewWorkloadAgent(rl.WorkloadA2C, 42, int64(100+i))
		if err != nil {
			panic(err)
		}
		agents[i] = a
	}

	k := sim.NewKernel()
	cfg := core.DefaultISWConfig()
	// Arm worker-side recovery. The timeout must sit comfortably above
	// one iteration's compute+aggregation time: a worker whose peers are
	// merely still computing must not mistake silence for loss (the
	// dedup bitmap keeps premature Helps harmless, but they flood the
	// fabric with pointless retransmissions).
	cfg.RecoveryTimeout = 40 * time.Millisecond
	cluster := core.NewISWStar(k, workers, agents[0].GradLen(), netsim.TenGbE(), cfg)
	cluster.StarSwitch.SetDedup(true) // idempotent retransmissions

	// Worker 0 suffers loss in both directions.
	cluster.Workers()[0].Port().SetLoss(lossRate, 17)
	cluster.StarSwitch.Switch().Ports()[0].SetLoss(lossRate, 23)

	services := make([]core.Service, workers)
	for i := range services {
		services[i] = cluster.Client(i)
	}
	w, _ := perfmodel.WorkloadByName("A2C")
	fmt.Printf("training A2C over a lossy fabric (%.1f%% loss on worker 0's links)...\n", lossRate*100)
	stats := core.RunSync(k, agents, services, core.SyncConfig{
		Iterations:   iterations,
		LocalCompute: w.LocalCompute,
		WeightUpdate: w.WeightUpdate,
	})

	rewards := stats.AllRewards()
	var early, late float64
	kth := len(rewards) / 5
	for _, r := range rewards[:kth] {
		early += r.Reward
	}
	for _, r := range rewards[len(rewards)-kth:] {
		late += r.Reward
	}
	fmt.Printf("\ncompleted all %d iterations in %v of virtual time\n", iterations, stats.Total.Round(1e6))
	fmt.Printf("reward: first fifth %.1f → last fifth %.1f (still learning through loss)\n",
		early/float64(kth), late/float64(kth))

	dropped := cluster.Workers()[0].Port().Dropped + cluster.StarSwitch.Switch().Ports()[0].Dropped
	acc := cluster.StarSwitch.Accelerator().Stats()
	fmt.Printf("\nrecovery machinery:\n")
	fmt.Printf("  packets dropped by the fabric:    %d\n", dropped)
	fmt.Printf("  Help requests relayed:            %d\n", cluster.StarSwitch.HelpRelayed)
	fmt.Printf("  duplicate retransmits absorbed:   %d (contributor bitmap)\n", acc.DupDropped)
	fmt.Printf("  per-iteration time:               %v (vs lossless ≈ %v)\n",
		stats.MeanIter().Round(1e4), (w.LocalCompute + w.WeightUpdate + 4*time.Millisecond).Round(1e4))
	fmt.Println("\nevery replica applied identical sums despite the loss — recovery is exact.")
}
