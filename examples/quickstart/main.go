// Quickstart: synchronous distributed RL training with in-switch
// aggregation on a simulated 4-worker cluster.
//
// Four A2C agents learn CartPole; every iteration their gradients
// travel as iSwitch data packets over simulated 10GbE to a programmable
// switch whose accelerator sums them on the fly and broadcasts the
// aggregate back. The virtual clock reports how long the run would take
// on the paper's testbed.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"iswitch/internal/core"
	"iswitch/internal/netsim"
	"iswitch/internal/perfmodel"
	"iswitch/internal/rl"
	"iswitch/internal/sim"
)

func main() {
	const workers = 4
	const iterations = 2500

	// Agents share the model seed (identical initial weights) and get
	// distinct exploration seeds.
	agents := make([]rl.Agent, workers)
	for i := range agents {
		a, err := rl.NewWorkloadAgent(rl.WorkloadA2C, 42, int64(100+i))
		if err != nil {
			panic(err)
		}
		agents[i] = a
	}

	// One iSwitch-enabled top-of-rack switch, one 10GbE link per worker.
	k := sim.NewKernel()
	cluster := core.Build(k, core.ClusterSpec{
		Topology:    core.TopoStar,
		Mode:        core.ModeISW,
		Workers:     workers,
		ModelFloats: agents[0].GradLen(),
		Link:        netsim.TenGbE(),
	}).ISW
	services := make([]core.Service, workers)
	for i := range services {
		services[i] = cluster.Client(i)
	}

	// Stage durations from the paper's A2C calibration.
	w, _ := perfmodel.WorkloadByName("A2C")
	fmt.Printf("training %d iterations of distributed A2C (%d params) on %d workers...\n",
		iterations, agents[0].GradLen(), workers)
	stats := core.RunSync(k, agents, services, core.SyncConfig{
		Iterations:   iterations,
		LocalCompute: w.LocalCompute,
		WeightUpdate: w.WeightUpdate,
	})

	rewards := stats.AllRewards()
	fmt.Printf("\n%-14s %-12s\n", "virtual time", "episode reward (moving avg)")
	step := len(rewards) / 10
	var windows []float64
	for i, r := range rewards {
		windows = append(windows, r.Reward)
		if step > 0 && (i+1)%step == 0 {
			avg := 0.0
			lo := len(windows) - 30
			if lo < 0 {
				lo = 0
			}
			for _, x := range windows[lo:] {
				avg += x
			}
			fmt.Printf("%-14v %8.1f\n", r.Time.Round(1e8), avg/float64(len(windows)-lo))
		}
	}
	fmt.Printf("\ncompleted in %v of virtual cluster time\n", stats.Total.Round(1e6))
	fmt.Printf("mean per-iteration %v (compute %v | in-switch aggregation %v | update %v)\n",
		stats.MeanIter().Round(1e4), stats.Workers[0].MeanCompute().Round(1e4),
		stats.MeanAgg().Round(1e4), stats.Workers[0].MeanUpdate().Round(1e4))
	fmt.Printf("switch stats: %d data packets in, %d segment broadcasts\n",
		cluster.StarSwitch.DataIn, cluster.StarSwitch.Broadcasts)
}
