// Atari-style DQN workload: compare the three synchronous aggregation
// strategies on the paper's largest model (DQN, 6.41 MB gradients).
//
// The comparison has two halves, matching the paper's methodology:
//
//  1. Timing — synthetic full-size (6.41 MB) gradients through the
//     packet-level simulation under PS, Ring-AllReduce, and iSwitch.
//
//  2. Convergence — real DQN training on GridPong (the Atari Pong
//     stand-in); synchronous strategies are mathematically equivalent,
//     so one trajectory serves all three, reached at each strategy's
//     own wall-clock rate (the paper's Figure 13).
//
//     go run ./examples/atari-dqn
package main

import (
	"fmt"
	"time"

	"iswitch/internal/core"
	"iswitch/internal/envs"
	"iswitch/internal/netsim"
	"iswitch/internal/perfmodel"
	"iswitch/internal/rl"
	"iswitch/internal/sim"
)

func main() {
	const workers = 4
	w, _ := perfmodel.WorkloadByName("DQN")

	// --- Half 1: full-size timing under each strategy. ---
	perIter := map[string]time.Duration{}
	for _, strategy := range []string{"PS", "AR", "iSW"} {
		k := sim.NewKernel()
		agents := make([]rl.Agent, workers)
		services := make([]core.Service, workers)
		spec := core.ClusterSpec{
			Topology:    core.TopoStar,
			Workers:     workers,
			ModelFloats: w.Floats(),
			Link:        netsim.TenGbE(),
		}
		switch strategy {
		case "PS":
			spec.Mode = core.ModePS
			cfg := core.PSConfigFor(w)
			spec.PS = &cfg
		case "AR":
			spec.Mode = core.ModeAllReduce
			cfg := core.ARConfigFor(w)
			spec.AR = &cfg
		case "iSW":
			spec.Mode = core.ModeISW
			cfg := core.ISWConfigFor(w)
			spec.ISW = &cfg
		}
		c := core.Build(k, spec)
		for i := range agents {
			agents[i], services[i] = core.NewSyntheticAgent(w.Floats()), c.Client(i)
		}
		stats := core.RunSync(k, agents, services, core.SyncConfig{
			Iterations: 3, LocalCompute: w.LocalCompute, WeightUpdate: w.WeightUpdate})
		perIter[strategy] = stats.MeanIter()
		fmt.Printf("%-4s per-iteration %8.2f ms (aggregation %8.2f ms)\n",
			strategy, float64(stats.MeanIter())/1e6, float64(stats.MeanAgg())/1e6)
	}
	fmt.Printf("iSwitch speedup: %.2fx vs PS, %.2fx vs AllReduce (paper: 3.66x, ~1.9x)\n\n",
		float64(perIter["PS"])/float64(perIter["iSW"]),
		float64(perIter["AR"])/float64(perIter["iSW"]))

	// --- Half 2: real convergence on the stand-in environment. ---
	const iterations = 4000
	agents := make([]*rl.DQN, workers)
	for i := range agents {
		agents[i] = rl.NewDQN(envs.NewGridPong(int64(10+i)), rl.DefaultDQNConfig(), 7, int64(20+i))
	}
	sum := make([]float32, agents[0].GradLen())
	g := make([]float32, agents[0].GradLen())
	var rewards []float64
	fmt.Printf("training DQN on GridPong, %d distributed iterations...\n", iterations)
	for it := 1; it <= iterations; it++ {
		for i := range sum {
			sum[i] = 0
		}
		for _, a := range agents {
			a.ComputeGradient(g)
			for i := range sum {
				sum[i] += g[i]
			}
		}
		for _, a := range agents {
			a.ApplyAggregated(sum, workers)
			rewards = append(rewards, a.DrainEpisodes()...)
		}
		if it%(iterations/8) == 0 {
			avg := 0.0
			lo := len(rewards) - 40
			if lo < 0 {
				lo = 0
			}
			for _, r := range rewards[lo:] {
				avg += r
			}
			avg /= float64(len(rewards) - lo)
			fmt.Printf("iter %5d  reward %6.2f | wall-clock: PS %7.1fs  AR %7.1fs  iSW %7.1fs\n",
				it, avg,
				float64(it)*perIter["PS"].Seconds(),
				float64(it)*perIter["AR"].Seconds(),
				float64(it)*perIter["iSW"].Seconds())
		}
	}
	fmt.Println("\nsame reward trajectory; iSwitch just gets there sooner (Figure 13).")
}
