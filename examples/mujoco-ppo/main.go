// Continuous-control PPO workload: asynchronous distributed training
// with the three-stage pipeline and staleness bound of Algorithm 1.
//
// Four PPO agents learn Pendulum (the MuJoCo Hopper stand-in). Each
// worker's Local-Gradient-Computing thread streams gradients to the
// simulated iSwitch without blocking; the switch aggregates any H=4
// vectors on the fly and broadcasts the sum; each worker's
// Local-Weight-Update thread applies it. Gradients staler than S are
// discarded at the worker.
//
//	go run ./examples/mujoco-ppo
package main

import (
	"fmt"

	"iswitch/internal/core"
	"iswitch/internal/netsim"
	"iswitch/internal/perfmodel"
	"iswitch/internal/rl"
	"iswitch/internal/sim"
)

func main() {
	const workers = 4
	const updates = 3000
	const stalenessBound = 3

	w, _ := perfmodel.WorkloadByName("PPO")
	agents := make([]rl.Agent, workers)
	for i := range agents {
		a, err := rl.NewWorkloadAgent(rl.WorkloadPPO, 42, int64(700+i))
		if err != nil {
			panic(err)
		}
		agents[i] = a
	}

	k := sim.NewKernel()
	cluster := core.Build(k, core.ClusterSpec{
		Topology:    core.TopoStar,
		Mode:        core.ModeISW,
		Workers:     workers,
		ModelFloats: agents[0].GradLen(),
		Link:        netsim.TenGbE(),
	}).ISW
	fmt.Printf("async PPO on Pendulum: %d workers, S=%d, target %d weight updates...\n",
		workers, stalenessBound, updates)
	stats := core.RunAsyncISW(k, agents, cluster, core.AsyncConfig{
		Updates:        updates,
		StalenessBound: stalenessBound,
		LocalCompute:   w.LocalCompute,
		WeightUpdate:   w.WeightUpdate,
	})

	rewards := stats.AllRewards()
	step := len(rewards) / 10
	var window []float64
	fmt.Printf("\n%-14s %s\n", "virtual time", "episode reward (moving avg)")
	for i, r := range rewards {
		window = append(window, r.Reward)
		if step > 0 && (i+1)%step == 0 {
			lo := len(window) - 40
			if lo < 0 {
				lo = 0
			}
			avg := 0.0
			for _, x := range window[lo:] {
				avg += x
			}
			fmt.Printf("%-14v %10.1f\n", r.Time.Round(1e8), avg/float64(len(window)-lo))
		}
	}

	fmt.Printf("\npipeline results after %v of virtual time:\n", stats.Total.Round(1e6))
	fmt.Printf("  weight updates:        %d (interval %v)\n", updates, stats.MeanIter().Round(1e4))
	fmt.Printf("  gradients committed:   %d\n", stats.Committed)
	fmt.Printf("  gradients discarded:   %d (staleness > %d)\n", stats.Discarded, stalenessBound)
	fmt.Printf("  mean staleness:        %.2f (bound %d)\n", stats.MeanStaleness(), stalenessBound)
	fmt.Println("\nall worker replicas applied identical update sequences — the")
	fmt.Println("decentralized weight storage of paper §4.1 needs no parameter server.")
}
