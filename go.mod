module iswitch

go 1.22
