package iswitch

import (
	"iswitch/internal/core"
	"iswitch/internal/netsim"
	"iswitch/internal/perfmodel"
	"iswitch/internal/rl"
	"iswitch/internal/sim"
)

// benchSyncRound runs one synchronous in-switch aggregation round with
// full-size synthetic gradients for workload w on 4 workers.
func benchSyncRound(w perfmodel.Workload) *core.RunStats {
	k := sim.NewKernel()
	c := core.NewISWStar(k, 4, w.Floats(), netsim.TenGbE(), core.ISWConfigFor(w))
	agents := make([]rl.Agent, 4)
	services := make([]core.Service, 4)
	for i := range agents {
		agents[i] = core.NewSyntheticAgent(w.Floats())
		services[i] = c.Client(i)
	}
	return core.RunSync(k, agents, services, core.SyncConfig{
		Iterations: 1, LocalCompute: w.LocalCompute, WeightUpdate: w.WeightUpdate})
}
