// Command iswitchd is the software emulation of the iSwitch in-switch
// aggregator: a UDP server that sums tagged gradient packets on the fly
// and broadcasts completed aggregates back to the joined workers — the
// role the NetFPGA data plane plays in the paper's hardware testbed.
//
// Usage:
//
//	iswitchd -listen 127.0.0.1:9990
//
// Pair with cmd/iswitch-worker processes.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"

	"iswitch/internal/transport"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9990", "UDP address to bind")
	flag.Parse()

	sw, err := transport.ListenSwitch(*listen)
	if err != nil {
		log.Fatalf("iswitchd: %v", err)
	}
	log.Printf("iswitchd: aggregating on %s", sw.Addr())

	go func() {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
		dataIn, broadcasts, _ := sw.Counters()
		log.Printf("iswitchd: members=%d data-in=%d broadcasts=%d; shutting down",
			sw.Members(), dataIn, broadcasts)
		sw.Close()
	}()
	if err := sw.Serve(); err != nil {
		log.Fatalf("iswitchd: %v", err)
	}
}
