// Command iswitchd is the software emulation of the iSwitch in-switch
// aggregator: a UDP server that sums tagged gradient packets on the fly
// and broadcasts completed aggregates back to the joined workers — the
// role the NetFPGA data plane plays in the paper's hardware testbed.
//
// Usage:
//
//	iswitchd -listen 127.0.0.1:9990
//	iswitchd -listen 127.0.0.1:9990 -workers 4
//
// Pair with cmd/iswitch-worker processes. -workers adds reader
// goroutines on the shared socket (each with its own reusable receive
// buffer) so the socket queue stays short while a handler holds the
// aggregation lock.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"

	"iswitch/internal/transport"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9990", "UDP address to bind")
	workers := flag.Int("workers", 1, "concurrent socket reader goroutines")
	flag.Parse()
	if *workers < 1 {
		*workers = 1
	}

	sw, err := transport.ListenSwitch(*listen)
	if err != nil {
		log.Fatalf("iswitchd: %v", err)
	}
	log.Printf("iswitchd: aggregating on %s (%d readers)", sw.Addr(), *workers)

	go func() {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
		dataIn, broadcasts, _ := sw.Counters()
		log.Printf("iswitchd: members=%d data-in=%d broadcasts=%d; shutting down",
			sw.Members(), dataIn, broadcasts)
		sw.Close()
	}()
	if err := sw.ServeN(*workers); err != nil {
		log.Fatalf("iswitchd: %v", err)
	}
}
