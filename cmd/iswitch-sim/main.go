// Command iswitch-sim runs one distributed-training simulation with a
// chosen workload, aggregation strategy, topology, and mode, printing
// per-iteration timing and phase breakdown. It is the exploration tool
// behind the canned experiments of cmd/iswitch-bench.
//
// Examples:
//
//	iswitch-sim -workload DQN -strategy isw
//	iswitch-sim -workload PPO -strategy ar -workers 9 -topology tree
//	iswitch-sim -workload DDPG -strategy isw -mode async -updates 100 -staleness 3
//	iswitch-sim -workload A2C -strategy isw -topology 3tier -aggs 2 -tors 2 -hosts 3
//	iswitch-sim -jobs 4 -workers 2 -topology tree -jobs-policy demand
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"iswitch/internal/accel"
	"iswitch/internal/core"
	"iswitch/internal/multijob"
	"iswitch/internal/netsim"
	"iswitch/internal/perfmodel"
	"iswitch/internal/protocol"
	"iswitch/internal/rl"
	"iswitch/internal/sim"
	"iswitch/internal/trace"
)

// newTraceRecorder attaches a packet trace to host's NIC (worker 0 in
// every topology). tail selects the ring recorder: keep the last max
// events instead of the first. Data events carry the segment and size;
// any non-default JobID is labeled so multi-tenant traces demux by eye.
func newTraceRecorder(host *netsim.Host, max int, tail bool) *trace.Recorder {
	rec := trace.New(max)
	if tail {
		rec = trace.NewRing(max)
	}
	host.Port().Trace = func(at sim.Time, kind string, pkt *protocol.Packet) {
		detail := "control " + pkt.Action.String()
		if pkt.IsData() {
			detail = fmt.Sprintf("data seg=%d (%d floats)", pkt.Seg, len(pkt.Data))
		}
		if pkt.Job != protocol.DefaultJob {
			detail = fmt.Sprintf("job=%d %s", pkt.Job, detail)
		}
		rec.Record(at, "worker0/nic", kind, detail)
	}
	return rec
}

func dumpTrace(rec *trace.Recorder) {
	fmt.Println("\npacket trace (worker 0 NIC):")
	fmt.Print(rec.String())
}

func main() {
	var (
		workload = flag.String("workload", "DQN", "DQN | A2C | PPO | DDPG")
		strategy = flag.String("strategy", "isw", "ps | ar | isw")
		topology = flag.String("topology", "star", "star | tree | 3tier (3tier: isw only)")
		workers  = flag.Int("workers", 4, "worker count (star/tree)")
		perRack  = flag.Int("per-rack", 3, "workers per rack (tree)")
		aggs     = flag.Int("aggs", 2, "aggregation switches (3tier)")
		tors     = flag.Int("tors", 2, "ToRs per AGG (3tier)")
		hosts    = flag.Int("hosts", 3, "workers per ToR (3tier)")
		mode     = flag.String("mode", "sync", "sync | async (async: ps or isw)")
		psShards = flag.Int("ps-shards", 1, "PS shard servers (ps/star only; 1 = single-server baseline)")
		iters    = flag.Int("iters", 3, "sync iterations to simulate")
		updates  = flag.Int64("updates", 50, "async weight updates to simulate")
		stale    = flag.Int64("staleness", 3, "async staleness bound S")
		doTrace  = flag.Int("trace", 0, "print N packet events of worker 0's NIC (isw strategies, any topology/mode)")
		traceEnd = flag.Bool("trace-tail", false, "with -trace: keep the last N events (ring buffer) instead of the first N")
		jobs     = flag.Int("jobs", 1, "co-running training jobs sharing the fabric (isw only; workloads cycled from -workload)")
		jobsPol  = flag.String("jobs-policy", "demand", "SRAM partition policy for -jobs: demand | static")
	)
	flag.Parse()

	w, err := perfmodel.WorkloadByName(*workload)
	if err != nil {
		log.Fatalf("iswitch-sim: %v", err)
	}
	if *psShards < 1 {
		log.Fatalf("iswitch-sim: -ps-shards must be >= 1")
	}
	if *psShards > 1 && (*strategy != "ps" || *topology != "star") {
		log.Fatalf("iswitch-sim: -ps-shards applies to -strategy ps -topology star only")
	}
	if *doTrace > 0 && *strategy != "isw" {
		log.Fatalf("iswitch-sim: -trace supports -strategy isw (any topology or mode)")
	}
	if *jobs < 1 {
		log.Fatalf("iswitch-sim: -jobs must be >= 1")
	}
	if *jobs > 1 {
		if *strategy != "isw" {
			log.Fatalf("iswitch-sim: -jobs requires -strategy isw (only iSwitches are multi-tenant)")
		}
		runJobs(w, *jobs, *jobsPol, *topology, *workers, *perRack, *aggs, *tors, *hosts,
			*mode, *iters, *updates, *stale, *doTrace, *traceEnd)
		return
	}
	k := sim.NewKernel()

	n := *workers
	if *topology == "3tier" {
		n = *aggs * *tors * *hosts
	}
	agents := make([]rl.Agent, n)
	for i := range agents {
		agents[i] = core.NewSyntheticAgent(w.Floats())
	}

	// One declarative spec covers every strategy × topology pairing; the
	// pieces below only vary Mode (sync/async flavors) on top of it.
	spec := core.ClusterSpec{
		Workers:     n,
		PerRack:     *perRack,
		ModelFloats: w.Floats(),
		Link:        netsim.TenGbE(),
		Uplink:      netsim.FortyGbE(),
		Shards:      *psShards,
	}
	switch *topology {
	case "star":
		spec.Topology = core.TopoStar
	case "tree":
		spec.Topology = core.TopoTree
	case "3tier":
		if *strategy != "isw" {
			fmt.Fprintf(os.Stderr, "unsupported combination: %s over %s\n", *strategy, *topology)
			os.Exit(1)
		}
		spec.Topology = core.TopoThreeTier
		spec.AGGs, spec.ToRsPerAGG, spec.HostsPerToR = *aggs, *tors, *hosts
		spec.Link, spec.Uplink, spec.CoreLink = netsim.DefaultThreeTierLinks()
	default:
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", *topology)
		os.Exit(1)
	}
	switch *strategy {
	case "ps":
		cfg := core.PSConfigFor(w)
		spec.PS = &cfg
	case "ar":
		cfg := core.ARConfigFor(w)
		spec.AR = &cfg
	case "isw":
		cfg := core.ISWConfigFor(w)
		spec.ISW = &cfg
	default:
		fmt.Fprintf(os.Stderr, "unknown strategy %q\n", *strategy)
		os.Exit(1)
	}

	switch *mode {
	case "sync":
		switch *strategy {
		case "ps":
			spec.Mode = core.ModePS
			if *psShards > 1 {
				spec.Mode = core.ModeShardedPS
			}
		case "ar":
			spec.Mode = core.ModeAllReduce
		case "isw":
			spec.Mode = core.ModeISW
		}
		c := core.Build(k, spec)
		if *doTrace > 0 && *strategy == "isw" {
			defer dumpTrace(newTraceRecorder(c.Workers()[0], *doTrace, *traceEnd))
		}
		services := make([]core.Service, n)
		for i := range services {
			services[i] = c.Client(i)
		}
		stats := core.RunSync(k, agents, services, core.SyncConfig{
			Iterations: *iters, LocalCompute: w.LocalCompute, WeightUpdate: w.WeightUpdate})
		shardNote := ""
		if *psShards > 1 {
			shardNote = fmt.Sprintf(" | %d PS shards", *psShards)
		}
		fmt.Printf("%s | sync %s over %s | %d workers%s | %d iterations\n",
			w.Name, *strategy, *topology, n, shardNote, *iters)
		fmt.Printf("  per-iteration:    %v\n", stats.MeanIter().Round(1000))
		fmt.Printf("    local compute:  %v\n", w.LocalCompute)
		fmt.Printf("    aggregation:    %v (%.1f%% of iteration)\n", stats.MeanAgg().Round(1000),
			100*float64(stats.MeanAgg())/float64(stats.MeanIter()))
		fmt.Printf("    weight update:  %v\n", w.WeightUpdate)
		fmt.Printf("  total virtual:    %v\n", stats.Total.Round(1000))
		fmt.Printf("  paper reference:  PS %v  AR %v  iSW %v per iteration\n",
			w.PaperSyncPerIterPS, w.PaperSyncPerIterAR, w.PaperSyncPerIterISW)

	case "async":
		cfg := core.AsyncConfig{Updates: *updates, StalenessBound: *stale,
			LocalCompute: w.LocalCompute, WeightUpdate: w.WeightUpdate}
		var stats *core.AsyncStats
		switch *strategy {
		case "isw":
			spec.Mode = core.ModeISW
			c := core.Build(k, spec).ISW
			if *doTrace > 0 {
				defer dumpTrace(newTraceRecorder(c.Workers()[0], *doTrace, *traceEnd))
			}
			stats = core.RunAsyncISW(k, agents, c, cfg)
		case "ps":
			if *psShards > 1 {
				spec.Mode = core.ModeAsyncShardedPS
				c := core.Build(k, spec).Sharded
				stats = core.RunAsyncShardedPS(k, agents, core.NewSyntheticAgent(w.Floats()), c, cfg)
				break
			}
			spec.Mode = core.ModeAsyncPS
			c := core.Build(k, spec).PS
			stats = core.RunAsyncPS(k, agents, core.NewSyntheticAgent(w.Floats()), c, cfg)
		default:
			fmt.Fprintln(os.Stderr, "async supports strategies: ps, isw")
			os.Exit(1)
		}
		fmt.Printf("%s | async %s over %s | %d workers | %d updates | S=%d\n",
			w.Name, *strategy, *topology, n, *updates, *stale)
		fmt.Printf("  per-update interval: %v\n", stats.MeanIter().Round(1000))
		fmt.Printf("  committed/discarded: %d/%d\n", stats.Committed, stats.Discarded)
		fmt.Printf("  mean staleness:      %.2f (bound %d)\n", stats.MeanStaleness(), *stale)
		for s, ps := range stats.PerShard {
			fmt.Printf("    shard %d:           committed/discarded %d/%d, mean staleness %.2f\n",
				s, ps.Committed, ps.Discarded, ps.MeanStaleness())
		}
		fmt.Printf("  total virtual:       %v\n", stats.Total.Round(1000))
		fmt.Printf("  paper reference:     async PS %v  async iSW %v per iteration\n",
			w.PaperAsyncPerIterPS, w.PaperAsyncPerIterISW)
	default:
		fmt.Fprintln(os.Stderr, "mode must be sync or async")
		os.Exit(1)
	}
}

// runJobs simulates J co-running training jobs sharing one iSwitch
// fabric through the multijob admission scheduler. Workloads cycle
// starting from the -workload selection; every job runs the chosen
// mode with the chosen per-job worker count.
func runJobs(w perfmodel.Workload, jobs int, policy, topology string,
	workers, perRack, aggs, tors, hosts int,
	mode string, iters int, updates, stale int64, doTrace int, traceTail bool) {
	var pol accel.Partition
	switch policy {
	case "demand":
		pol = accel.PartitionDemand
	case "static":
		pol = accel.PartitionStatic
	default:
		log.Fatalf("iswitch-sim: -jobs-policy must be demand or static")
	}

	k := sim.NewKernel()
	fcfg := multijob.FabricConfig{Policy: pol}
	nHosts := jobs * workers
	var f *multijob.Fabric
	switch topology {
	case "star":
		f = multijob.NewStarFabric(k, nHosts, netsim.TenGbE(), fcfg)
	case "tree":
		f = multijob.NewTreeFabric(k, nHosts, perRack, netsim.TenGbE(), netsim.FortyGbE(), fcfg)
	case "3tier":
		e, a, c := netsim.DefaultThreeTierLinks()
		f = multijob.NewThreeTierFabric(k, aggs, tors, hosts, e, a, c, fcfg)
		if len(f.Hosts) < nHosts {
			log.Fatalf("iswitch-sim: 3tier fabric has %d hosts; %d jobs x %d workers need %d",
				len(f.Hosts), jobs, workers, nHosts)
		}
	default:
		log.Fatalf("iswitch-sim: unknown topology %q", topology)
	}

	var rec *trace.Recorder
	if doTrace > 0 {
		rec = newTraceRecorder(f.Hosts[0], doTrace, traceTail)
	}

	wls := perfmodel.Workloads()
	start := 0
	for i, cand := range wls {
		if cand.Name == w.Name {
			start = i
		}
	}
	specs := make([]multijob.JobSpec, jobs)
	for i := range specs {
		wl := wls[(start+i)%len(wls)]
		spec := multijob.JobSpec{
			Name: fmt.Sprintf("%s/%d", wl.Name, i), Workload: wl, Workers: workers,
		}
		if mode == "async" {
			spec.Mode, spec.Updates, spec.StalenessBound = multijob.ModeAsync, updates, stale
		} else {
			spec.Mode, spec.Iterations = multijob.ModeSync, iters
		}
		specs[i] = spec
	}

	res, err := multijob.Run(f, specs)
	if err != nil {
		log.Fatalf("iswitch-sim: %v", err)
	}

	fmt.Printf("%d co-running jobs over %s | %s SRAM partition | %d workers each | %s mode\n",
		jobs, topology, pol, workers, mode)
	fmt.Printf("%-10s %-6s %-9s %12s %12s %11s %10s\n",
		"job", "mode", "admission", "started(ms)", "finish(ms)", "round(ms)", "wire(MB)")
	for _, r := range res {
		adm := "ok"
		switch {
		case r.Rejected:
			adm = "rejected"
		case r.Queued:
			adm = "queued"
		}
		if r.Rejected {
			fmt.Printf("%-10s %-6s %-9s\n", r.Name, r.Mode, adm)
			continue
		}
		fmt.Printf("%-10s %-6s %-9s %12.2f %12.2f %11.2f %10.2f\n",
			r.Name, r.Mode, adm,
			float64(r.Started)/1e6, float64(r.Finished)/1e6,
			float64(r.MeanRound)/1e6, float64(r.WireBytes)/1e6)
	}
	sum := multijob.Summarize(res)
	fmt.Printf("\nmakespan:            %v\n", sum.Makespan.Round(1000))
	fmt.Printf("aggregate gradient:  %.3f Gb/s\n", sum.AggThroughputBps/1e9)
	fmt.Printf("wire fairness:       %.3f (Jain)\n", sum.Fairness)
	fmt.Printf("admission:           %d ran, %d queued, %d rejected\n",
		sum.Ran, sum.Queued, sum.Rejected)

	if rec != nil {
		dumpTrace(rec)
	}
}
