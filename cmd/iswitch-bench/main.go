// Command iswitch-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	iswitch-bench                 # every cheap experiment
//	iswitch-bench -exp table4     # one experiment
//	iswitch-bench -all            # everything, including functional
//	                              # training curves (minutes)
//	iswitch-bench -all -quick     # everything, shortened training
//	iswitch-bench -parallel 4     # worker-pool width (default GOMAXPROCS)
//	iswitch-bench -list           # list experiment ids
//	iswitch-bench -kernels        # report float32 kernel backends and
//	                              # a scalar-vs-SIMD throughput smoke
//	iswitch-bench -simcore        # benchmark the calendar-queue event
//	                              # scheduler against the reference heap
//	iswitch-bench -lossy          # reliability sweep: loss × topology ×
//	                              # mode plus crash and failover cells
//	iswitch-bench -quant          # quantized/sparse aggregation sweep:
//	                              # scheme × round time × wire bytes
//	iswitch-bench -serve          # inference fleet: latency-vs-load to
//	                              # saturation + training co-residency
//
// Experiments run on a bounded worker pool (-parallel); every
// simulation cell is an isolated kernel with fixed seeds and results
// are printed in paper order, so stdout is byte-identical at any
// parallelism level. Timing lines go to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"iswitch/internal/experiments"
	"iswitch/internal/parallel"
	"iswitch/internal/tensor/kernels"
)

// kernelReport prints the available float32 kernel backends and a quick
// Add/Dot throughput smoke for each — enough for CI logs to prove which
// datapath the numbers below were produced on.
func kernelReport(w io.Writer) {
	fmt.Fprintf(w, "float32 kernel backends: %v (selected: %s)\n", kernels.Backends(), kernels.Backend())
	orig := kernels.Backend()
	defer kernels.SetBackend(orig)
	const n = 16384 // 64 KiB of float32s
	dst := make([]float32, n)
	src := make([]float32, n)
	for i := range src {
		src[i] = float32(i%7) * 0.25
	}
	for _, b := range kernels.Backends() {
		if err := kernels.SetBackend(b); err != nil {
			fmt.Fprintf(w, "  %-8s unavailable: %v\n", b, err)
			continue
		}
		for _, k := range []struct {
			name string
			fn   func()
		}{
			{"Add", func() { kernels.Add(dst, src) }},
			{"Dot", func() { kernels.Dot(dst, src) }},
		} {
			iters := 1
			var el time.Duration
			for {
				t0 := time.Now()
				for i := 0; i < iters; i++ {
					k.fn()
				}
				el = time.Since(t0)
				if el > 10*time.Millisecond {
					break
				}
				iters *= 4
			}
			gbps := float64(4*n) * float64(iters) / float64(el.Nanoseconds())
			fmt.Fprintf(w, "  %-8s %-4s %6.1f GB/s (64 KiB)\n", b, k.name, gbps)
		}
	}
}

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id to run (empty: all cheap ones)")
		all     = flag.Bool("all", false, "include expensive functional-training experiments")
		quick   = flag.Bool("quick", false, "shorten functional training runs")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		kern    = flag.Bool("kernels", false, "report float32 kernel backends and exit")
		simcore = flag.Bool("simcore", false, "benchmark the event scheduler (calendar vs heap) and exit")
		lossy   = flag.Bool("lossy", false, "run the reliability (loss/crash/failover) sweep and exit")
		quant   = flag.Bool("quant", false, "run the quantized/sparse compression sweep and exit")
		fair    = flag.Bool("fair", false, "run the adversarial-tenant fairness isolation cells and exit")
		srv     = flag.Bool("serve", false, "run the inference-serving sweep and co-residency cells and exit")
		workers = flag.Int("parallel", runtime.GOMAXPROCS(0), "max concurrent simulation workers (<1: GOMAXPROCS)")
	)
	flag.Parse()

	if *kern {
		kernelReport(os.Stdout)
		return
	}
	if *simcore {
		// Wall-clock numbers, so it lives outside the deterministic
		// experiment registry, like -kernels.
		fmt.Println(experiments.SimCore().String())
		return
	}
	if *lossy {
		// Also registered as -exp lossy; the dedicated flag matches
		// -simcore for the CI smoke.
		fmt.Println(experiments.Lossy().String())
		return
	}
	if *quant {
		// Also registered as -exp quant.
		fmt.Println(experiments.Quant().String())
		return
	}
	if *fair {
		// Also registered as -exp fair.
		fmt.Println(experiments.Fairness().String())
		return
	}
	if *srv {
		// Also registered as -exp serve.
		fmt.Println(experiments.Serve().String())
		return
	}
	// Every results run records which gradient datapath produced it.
	fmt.Fprintf(os.Stderr, "float32 kernel backend: %s\n", kernels.Backend())

	experiments.SetParallelism(*workers)
	nWorkers := experiments.Parallelism()

	opts := experiments.DefaultCurveOpts()
	if *quick {
		opts = experiments.QuickCurveOpts()
	}
	specs := experiments.Specs(opts)

	if *list {
		for _, s := range specs {
			tag := ""
			if s.Expensive {
				tag = "  (expensive: functional training)"
			}
			fmt.Printf("%-22s %s%s\n", s.ID, s.Title, tag)
		}
		return
	}

	if *exp != "" {
		s, ok := experiments.ByID(*exp, opts)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *exp)
			os.Exit(1)
		}
		specs = []experiments.Spec{s}
	} else if !*all {
		// Keep skipped experiments in the list so their skip notice
		// prints at the paper-order position.
		for i := range specs {
			if specs[i].Expensive {
				specs[i].Run = nil
			}
		}
	}

	type outcome struct {
		res experiments.Result
		dur time.Duration
	}
	var cumulative time.Duration
	start := time.Now()
	// Run specs concurrently; emit fires in submission order, so stdout
	// carries only deterministic Result text in paper order.
	err := parallel.MapOrdered(nWorkers, len(specs),
		func(i int) outcome {
			if specs[i].Run == nil {
				return outcome{}
			}
			t0 := time.Now()
			return outcome{res: specs[i].Run(), dur: time.Since(t0)}
		},
		func(i int, o outcome) {
			if specs[i].Run == nil {
				fmt.Printf("=== %s: %s === (skipped; run with -all)\n\n", specs[i].ID, specs[i].Title)
				return
			}
			cumulative += o.dur
			fmt.Println(o.res.String())
			fmt.Println()
			fmt.Fprintf(os.Stderr, "(%s generated in %v)\n", specs[i].ID, o.dur.Round(time.Millisecond))
		})
	wall := time.Since(start)

	if err != nil {
		fmt.Fprintf(os.Stderr, "experiment worker panicked:\n%v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "total wall-clock %v, cumulative experiment time %v",
		wall.Round(time.Millisecond), cumulative.Round(time.Millisecond))
	if nWorkers > 1 && wall > 0 {
		fmt.Fprintf(os.Stderr, " (%.2fx speedup at -parallel %d)",
			cumulative.Seconds()/wall.Seconds(), nWorkers)
	}
	fmt.Fprintln(os.Stderr)
}
