// Command iswitch-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	iswitch-bench                 # every cheap experiment
//	iswitch-bench -exp table4     # one experiment
//	iswitch-bench -all            # everything, including functional
//	                              # training curves (minutes)
//	iswitch-bench -all -quick     # everything, shortened training
//	iswitch-bench -list           # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"iswitch/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id to run (empty: all cheap ones)")
		all   = flag.Bool("all", false, "include expensive functional-training experiments")
		quick = flag.Bool("quick", false, "shorten functional training runs")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	opts := experiments.DefaultCurveOpts()
	if *quick {
		opts = experiments.QuickCurveOpts()
	}
	specs := experiments.Specs(opts)

	if *list {
		for _, s := range specs {
			tag := ""
			if s.Expensive {
				tag = "  (expensive: functional training)"
			}
			fmt.Printf("%-22s %s%s\n", s.ID, s.Title, tag)
		}
		return
	}

	run := func(s experiments.Spec) {
		start := time.Now()
		res := s.Run()
		fmt.Println(res.String())
		fmt.Printf("(generated in %v)\n\n", time.Since(start).Round(time.Millisecond))
	}

	if *exp != "" {
		s, ok := experiments.ByID(*exp, opts)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *exp)
			os.Exit(1)
		}
		run(s)
		return
	}
	for _, s := range specs {
		if s.Expensive && !*all {
			fmt.Printf("=== %s: %s === (skipped; run with -all)\n\n", s.ID, s.Title)
			continue
		}
		run(s)
	}
}
