// Command iswitch-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	iswitch-bench                 # every cheap experiment
//	iswitch-bench -exp table4     # one experiment
//	iswitch-bench -all            # everything, including functional
//	                              # training curves (minutes)
//	iswitch-bench -all -quick     # everything, shortened training
//	iswitch-bench -parallel 4     # worker-pool width (default GOMAXPROCS)
//	iswitch-bench -list           # list experiment ids
//
// Experiments run on a bounded worker pool (-parallel); every
// simulation cell is an isolated kernel with fixed seeds and results
// are printed in paper order, so stdout is byte-identical at any
// parallelism level. Timing lines go to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"iswitch/internal/experiments"
	"iswitch/internal/parallel"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id to run (empty: all cheap ones)")
		all     = flag.Bool("all", false, "include expensive functional-training experiments")
		quick   = flag.Bool("quick", false, "shorten functional training runs")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		workers = flag.Int("parallel", runtime.GOMAXPROCS(0), "max concurrent simulation workers (<1: GOMAXPROCS)")
	)
	flag.Parse()

	experiments.SetParallelism(*workers)
	nWorkers := experiments.Parallelism()

	opts := experiments.DefaultCurveOpts()
	if *quick {
		opts = experiments.QuickCurveOpts()
	}
	specs := experiments.Specs(opts)

	if *list {
		for _, s := range specs {
			tag := ""
			if s.Expensive {
				tag = "  (expensive: functional training)"
			}
			fmt.Printf("%-22s %s%s\n", s.ID, s.Title, tag)
		}
		return
	}

	if *exp != "" {
		s, ok := experiments.ByID(*exp, opts)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *exp)
			os.Exit(1)
		}
		specs = []experiments.Spec{s}
	} else if !*all {
		// Keep skipped experiments in the list so their skip notice
		// prints at the paper-order position.
		for i := range specs {
			if specs[i].Expensive {
				specs[i].Run = nil
			}
		}
	}

	type outcome struct {
		res experiments.Result
		dur time.Duration
	}
	var cumulative time.Duration
	start := time.Now()
	// Run specs concurrently; emit fires in submission order, so stdout
	// carries only deterministic Result text in paper order.
	err := parallel.MapOrdered(nWorkers, len(specs),
		func(i int) outcome {
			if specs[i].Run == nil {
				return outcome{}
			}
			t0 := time.Now()
			return outcome{res: specs[i].Run(), dur: time.Since(t0)}
		},
		func(i int, o outcome) {
			if specs[i].Run == nil {
				fmt.Printf("=== %s: %s === (skipped; run with -all)\n\n", specs[i].ID, specs[i].Title)
				return
			}
			cumulative += o.dur
			fmt.Println(o.res.String())
			fmt.Println()
			fmt.Fprintf(os.Stderr, "(%s generated in %v)\n", specs[i].ID, o.dur.Round(time.Millisecond))
		})
	wall := time.Since(start)

	if err != nil {
		fmt.Fprintf(os.Stderr, "experiment worker panicked:\n%v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "total wall-clock %v, cumulative experiment time %v",
		wall.Round(time.Millisecond), cumulative.Round(time.Millisecond))
	if nWorkers > 1 && wall > 0 {
		fmt.Fprintf(os.Stderr, " (%.2fx speedup at -parallel %d)",
			cumulative.Seconds()/wall.Seconds(), nWorkers)
	}
	fmt.Fprintln(os.Stderr)
}
