// Command iswitch-worker is a distributed RL training worker that
// aggregates gradients through an iswitchd process over real UDP.
//
// Start one iswitchd and W workers with the same -workload and
// -model-seed; each worker computes local gradients on its own
// environment and the switch sums them — synchronous distributed
// training with in-switch aggregation, over genuine sockets.
//
// Usage:
//
//	iswitchd -listen 127.0.0.1:9990 &
//	iswitch-worker -switch 127.0.0.1:9990 -workload A2C -iters 2000 -exp-seed 1 &
//	iswitch-worker -switch 127.0.0.1:9990 -workload A2C -iters 2000 -exp-seed 2
package main

import (
	"flag"
	"log"
	"time"

	"iswitch/internal/rl"
	"iswitch/internal/transport"
)

func main() {
	var (
		swAddr    = flag.String("switch", "127.0.0.1:9990", "iswitchd UDP address")
		workload  = flag.String("workload", "A2C", "DQN | A2C | PPO | DDPG")
		iters     = flag.Int("iters", 2000, "training iterations")
		modelSeed = flag.Int64("model-seed", 42, "shared initial-weights seed (same on every worker)")
		expSeed   = flag.Int64("exp-seed", 1, "per-worker exploration seed")
		workers   = flag.Int("workers", 1, "total workers in the job (the aggregation threshold H)")
		settle    = flag.Duration("settle", 2*time.Second, "wait after Join for peers to join")
		report    = flag.Int("report", 200, "iterations between progress lines")
	)
	flag.Parse()

	agent, err := rl.NewWorkloadAgent(*workload, *modelSeed, *expSeed)
	if err != nil {
		log.Fatalf("iswitch-worker: %v", err)
	}
	client, err := transport.Dial(*swAddr, agent.GradLen())
	if err != nil {
		log.Fatalf("iswitch-worker: %v", err)
	}
	defer client.Close()
	if err := client.Join(); err != nil {
		log.Fatalf("iswitch-worker: %v", err)
	}
	log.Printf("iswitch-worker: joined %s (%s, %d params); waiting %v for peers",
		*swAddr, agent.Name(), agent.GradLen(), *settle)
	time.Sleep(*settle)

	grad := make([]float32, agent.GradLen())
	var rewards []float64
	start := time.Now()
	for it := 1; it <= *iters; it++ {
		agent.ComputeGradient(grad)
		sum, err := client.Aggregate(grad)
		if err != nil {
			log.Fatalf("iswitch-worker: iteration %d: %v", it, err)
		}
		// The switch sums H = -workers gradients; the worker divides when
		// applying (Algorithm 1's w ← w − γ·g_sum/H).
		agent.ApplyAggregated(sum, *workers)
		rewards = append(rewards, agent.DrainEpisodes()...)
		if it%*report == 0 {
			log.Printf("iter %6d | episodes %5d | avg reward (last 20) %8.2f | %.1f iter/s",
				it, len(rewards), last20(rewards), float64(it)/time.Since(start).Seconds())
		}
	}
	log.Printf("done: %d iterations, %d episodes, final avg reward %.2f",
		*iters, len(rewards), last20(rewards))
}

func last20(xs []float64) float64 {
	lo := len(xs) - 20
	if lo < 0 {
		lo = 0
	}
	if len(xs) == 0 {
		return 0
	}
	var t float64
	for _, x := range xs[lo:] {
		t += x
	}
	return t / float64(len(xs)-lo)
}
